use crate::args::Parsed;
use crate::run;

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = run(&argv, &mut out, &mut err);
    (
        code,
        String::from_utf8(out).unwrap(),
        String::from_utf8(err).unwrap(),
    )
}

// ------------------------------------------------------------------ args

#[test]
fn parses_command_flags_and_positionals() {
    let p = Parsed::new(&[
        "run".into(),
        "--preset".into(),
        "theta".into(),
        "extra".into(),
        "--jobs".into(),
        "100".into(),
    ])
    .unwrap();
    assert_eq!(p.command, "run");
    assert_eq!(p.positional, ["extra"]);
    assert_eq!(p.get("preset"), Some("theta"));
    assert_eq!(p.get_parsed("jobs", 0usize).unwrap(), 100);
    assert_eq!(p.get_parsed("seed", 7u64).unwrap(), 7); // default
}

#[test]
fn rejects_flag_without_value() {
    assert!(Parsed::new(&["run".into(), "--preset".into()]).is_err());
    assert!(Parsed::new(&["run".into(), "--preset".into(), "--jobs".into()]).is_err());
    assert!(Parsed::new(&[]).is_err());
}

#[test]
fn switches_take_no_value() {
    let p = Parsed::new(&["log".into(), "--json".into(), "stats".into()]).unwrap();
    assert!(p.switch("json"));
    assert_eq!(p.positional, ["stats"]);
}

#[test]
fn require_reports_missing() {
    let p = Parsed::new(&["run".into()]).unwrap();
    assert!(p.require("preset").is_err());
}

// ------------------------------------------------------------- commands

#[test]
fn help_prints_usage() {
    let (code, out, _) = run_cli(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (code, _, err) = run_cli(&["frobnicate"]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown command"));
}

#[test]
fn topology_show_preset() {
    let (code, out, _) = run_cli(&["topology", "show", "--preset", "iitk-dept"]);
    assert_eq!(code, 0);
    assert!(out.contains("50 nodes"));
    assert!(out.contains("4 leaves") || out.contains("(4 leaves)"));
}

#[test]
fn topology_show_exascale_presets() {
    let (code, out, _) = run_cli(&["topology", "show", "--preset", "multirail-500k"]);
    assert_eq!(code, 0);
    assert!(out.contains("524288 nodes"));
    let (code, out, _) = run_cli(&["topology", "show", "--preset", "dragonfly-1m"]);
    assert_eq!(code, 0);
    assert!(out.contains("1048576 nodes"));
}

#[test]
fn topology_validate_round_trip() {
    let dir = std::env::temp_dir().join("commsched-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("topo.conf");
    std::fs::write(
        &path,
        "SwitchName=s0 Nodes=n[0-3]\nSwitchName=s1 Nodes=n[4-7]\nSwitchName=s2 Switches=s[0-1]\n",
    )
    .unwrap();
    let (code, out, _) = run_cli(&["topology", "validate", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("OK"));
    assert!(out.contains("8 nodes"));

    std::fs::write(
        &path,
        "SwitchName=s0 Nodes=n[0-3]\nSwitchName=s1 Nodes=n[2-5]\n",
    )
    .unwrap();
    let (code, _, err) = run_cli(&["topology", "validate", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("more than one switch"), "{err}");
}

#[test]
fn log_stats_synthetic() {
    let (code, out, _) = run_cli(&[
        "log", "stats", "--system", "theta", "--jobs", "50", "--seed", "3",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("50 jobs"));
    assert!(out.contains("powers of two"));
}

#[test]
fn log_stats_json() {
    let (code, out, _) = run_cli(&["log", "stats", "--system", "mira", "--jobs", "20", "--json"]);
    assert_eq!(code, 0);
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(v["jobs"], 20);
}

#[test]
fn log_generate_and_stats_round_trip() {
    let dir = std::env::temp_dir().join("commsched-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.swf");
    let (code, _, _) = run_cli(&[
        "log",
        "generate",
        "--system",
        "theta",
        "--jobs",
        "30",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let (code, out, _) = run_cli(&["log", "stats", "--swf", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(out.contains("30 jobs"));
}

#[test]
fn compare_runs_all_selectors() {
    let (code, out, _) = run_cli(&[
        "compare", "--preset", "theta", "--system", "theta", "--jobs", "40",
    ]);
    assert_eq!(code, 0);
    for name in ["default", "greedy", "balanced", "adaptive"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn threads_flag_never_changes_output() {
    let base = run_cli(&[
        "compare", "--preset", "theta", "--system", "theta", "--jobs", "40",
    ]);
    assert_eq!(base.0, 0, "{}", base.2);
    for threads in ["1", "2", "4"] {
        let run = run_cli(&[
            "compare",
            "--preset",
            "theta",
            "--system",
            "theta",
            "--jobs",
            "40",
            "--threads",
            threads,
        ]);
        assert_eq!(run.0, 0, "{}", run.2);
        assert_eq!(base.1, run.1, "output differs at --threads {threads}");
    }
}

#[test]
fn threads_flag_rejects_garbage() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--threads",
        "many",
    ]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("--threads"), "{err}");
}

#[test]
fn run_single_selector() {
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "25",
        "--selector",
        "balanced",
        "--pattern",
        "rd",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("balanced"));
    assert!(!out.contains("greedy"));
}

#[test]
fn run_rejects_oversized_log() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "iitk-dept",
        "--system",
        "mira",
        "--jobs",
        "5",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("requests"), "{err}");
}

#[test]
fn patterns_lists_all() {
    let (code, out, _) = run_cli(&["patterns", "4"]);
    assert_eq!(code, 0);
    for name in ["RD", "RHVD", "Binomial", "Ring", "Stencil2D", "Alltoall"] {
        assert!(out.contains(name), "missing {name}");
    }
}

#[test]
fn bad_preset_and_system_errors() {
    let (code, _, err) = run_cli(&["topology", "show", "--preset", "nope"]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown preset"));

    let (code, _, err) = run_cli(&["log", "stats", "--system", "nope"]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown system"));
}

#[test]
fn run_with_drain_and_backfill_flags() {
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "20",
        "--drain",
        "100",
        "--backfill",
        "conservative",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("(100 drained)"), "{out}");
}

#[test]
fn run_rejects_full_drain_and_bad_backfill() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "iitk-dept",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--drain",
        "50",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("no healthy nodes"), "{err}");

    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--backfill",
        "bogus",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown backfill"), "{err}");
}

#[test]
fn run_prints_utilization_timeline() {
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "15",
        "--selector",
        "default",
        "--utilization",
        "5",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("utilization over time"), "{out}");
    assert!(out.matches("t=").count() == 5, "{out}");
}

#[test]
fn individual_subcommand_reports_improvements() {
    let (code, out, _) = run_cli(&[
        "individual",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "120",
        "--probes",
        "20",
        "--warmup",
        "0.4",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("individual runs: 20 probes"), "{out}");
    for name in ["greedy", "balanced", "adaptive"] {
        assert!(out.contains(name), "missing {name}");
    }
}

#[test]
fn individual_rejects_bad_warmup() {
    let (code, _, err) = run_cli(&[
        "individual",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "10",
        "--warmup",
        "1.5",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("--warmup"), "{err}");
}

// ---------------------------------------------------------------- faults

#[test]
fn run_with_mtbf_prints_failure_summary() {
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "iitk-hpc2010",
        "--system",
        "theta",
        "--jobs",
        "30",
        "--mtbf",
        "500000",
        "--mttr",
        "3600",
        "--fault-seed",
        "11",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("failures (policy: requeue"), "{out}");
    assert!(out.contains("node-hours lost"), "{out}");
}

#[test]
fn run_with_fault_trace_file() {
    let dir = std::env::temp_dir().join("commsched-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faults.trace");
    std::fs::write(
        &path,
        "# node 3 dies early and comes back\n100 3 fail\n5000 3 recover\n",
    )
    .unwrap();
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "20",
        "--fault-trace",
        path.to_str().unwrap(),
        "--failure-policy",
        "cancel",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("failures (policy: cancel)"), "{out}");
}

#[test]
fn malformed_fault_trace_reports_line() {
    let dir = std::env::temp_dir().join("commsched-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.trace");
    std::fs::write(&path, "100 3 fail\n200 x recover\n").unwrap();
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--fault-trace",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn fault_trace_node_out_of_range_is_rejected() {
    let dir = std::env::temp_dir().join("commsched-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("range.trace");
    std::fs::write(&path, "100 99999 fail\n").unwrap();
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--fault-trace",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("99999"), "{err}");
}

#[test]
fn fault_trace_and_mtbf_are_mutually_exclusive() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--mtbf",
        "1000",
        "--fault-trace",
        "whatever.trace",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("at most one"), "{err}");
}

#[test]
fn run_with_switch_and_link_generators_composes() {
    // All three fault-domain generators at once: the run must succeed and
    // still report the failure summary, and the composed trace must be
    // deterministic — the same flags twice give byte-identical output.
    let args = [
        "run",
        "--preset",
        "iitk-hpc2010",
        "--system",
        "theta",
        "--jobs",
        "30",
        "--mtbf",
        "500000",
        "--switch-mtbf",
        "800000",
        "--switch-mttr",
        "7200",
        "--link-degrade",
        "250",
        "--link-mtbf",
        "400000",
        "--fault-seed",
        "11",
    ];
    let (code, out, _) = run_cli(&args);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("failures (policy: requeue"), "{out}");
    assert!(out.contains("node-hours lost"), "{out}");
    let (code2, out2, _) = run_cli(&args);
    assert_eq!(code2, 0);
    assert_eq!(out, out2, "fault-domain generators not deterministic");
}

#[test]
fn switch_mtbf_conflicts_with_fault_trace() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--switch-mtbf",
        "1000",
        "--fault-trace",
        "whatever.trace",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("at most one"), "{err}");
}

#[test]
fn link_degrade_rejects_zero_permille() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--link-degrade",
        "0",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("permille"), "{err}");
}

#[test]
fn bad_failure_policy_is_rejected() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--mtbf",
        "100000",
        "--failure-policy",
        "explode",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("unknown failure policy"), "{err}");
}

#[test]
fn reject_oversized_turns_abort_into_outcomes() {
    // Mira jobs on the 50-node department cluster: without the switch the
    // run aborts (see run_rejects_oversized_log); with it, wide jobs become
    // per-job rejections and the run completes.
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "iitk-dept",
        "--system",
        "mira",
        "--jobs",
        "5",
        "--reject-oversized",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("rejected"), "{out}");
}

// ---------------------------------------------------------- observability

fn tmp_path(stem: &str, ext: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("commsched-cli-{}-{stem}.{ext}", std::process::id()))
}

#[test]
fn trace_filter_requires_trace_out() {
    let (code, _, err) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--trace-filter",
        "job",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("--trace-filter needs --trace-out"), "{err}");
}

#[test]
fn trace_out_is_deterministic_and_leaves_summary_unchanged() {
    let trace = tmp_path("trace-det", "jsonl");
    let base = &[
        "run", "--preset", "theta", "--system", "theta", "--jobs", "20", "--seed", "3",
    ];
    let (code, plain, _) = run_cli(base);
    assert_eq!(code, 0, "{plain}");

    let mut traced_args: Vec<&str> = base.to_vec();
    let trace_s = trace.to_string_lossy().into_owned();
    traced_args.extend_from_slice(&["--trace-out", &trace_s]);
    let (code, traced, _) = run_cli(&traced_args);
    assert_eq!(code, 0, "{traced}");
    let first = std::fs::read_to_string(&trace).unwrap();
    assert!(!first.is_empty());
    assert!(
        first.lines().all(|l| l.starts_with("{\"t_us\":")),
        "bad jsonl"
    );
    // The summary table is unchanged apart from the trailing "wrote" line.
    assert!(
        traced.starts_with(&plain),
        "observed run changed the summary"
    );

    // Same seed, same bytes.
    let (code, _, _) = run_cli(&traced_args);
    assert_eq!(code, 0);
    assert_eq!(std::fs::read_to_string(&trace).unwrap(), first);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn compare_writes_per_selector_reports() {
    let report = tmp_path("cmp-report", "json");
    let report_s = report.to_string_lossy().into_owned();
    let (code, out, _) = run_cli(&[
        "compare",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "10",
        "--report-out",
        &report_s,
    ]);
    assert_eq!(code, 0, "{out}");
    for sel in ["default", "greedy", "balanced", "adaptive"] {
        let p = report_s.replace(".json", &format!(".{sel}.json"));
        let text = std::fs::read_to_string(&p).unwrap_or_else(|_| panic!("missing {p}"));
        assert!(text.contains("\"jobs.submitted\": 10"), "{text}");
        let _ = std::fs::remove_file(&p);
    }
}

#[test]
fn chrome_export_for_json_extension() {
    let trace = tmp_path("chrome", "json");
    let trace_s = trace.to_string_lossy().into_owned();
    let (code, out, _) = run_cli(&[
        "run",
        "--preset",
        "theta",
        "--system",
        "theta",
        "--jobs",
        "5",
        "--trace-out",
        &trace_s,
        "--trace-filter",
        "job,fault",
    ]);
    assert_eq!(code, 0, "{out}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.starts_with("{\"traceEvents\":["), "{text}");
    assert!(text.contains("\"name\":\"queued\""), "{text}");
    let _ = std::fs::remove_file(&trace);
}
