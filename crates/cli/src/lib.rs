//! Implementation of the `commsched` command-line tool.
//!
//! The binary is a thin `main` over [`run`], so every subcommand is unit-
//! testable: commands take parsed arguments and write to any `io::Write`.
//!
//! ```text
//! commsched topology validate <topology.conf>
//! commsched topology show (--preset NAME | --conf FILE)
//! commsched log generate --system NAME [--jobs N] [--seed S]
//!                        [--comm-pct P] [--pattern PAT] [--out FILE]
//! commsched log stats (--swf FILE [--ppn N] | --system NAME [...])
//! commsched run (--preset NAME | --conf FILE) --selector SEL
//!               (--swf FILE [--ppn N] | --system NAME) [--jobs N] [...]
//! commsched compare ...         # `run` for all four selectors
//! commsched patterns [RANKS]    # print collective schedules
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod args;
mod cmd;

pub use args::{ArgError, Parsed};

use std::io::Write;

/// Entry point: parse `argv` (without the program name) and execute.
///
/// Returns the process exit code; all output goes to `out`, errors to
/// `err`.
pub fn run(argv: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    let parsed = match args::Parsed::new(argv) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(err, "error: {e}\n\n{}", usage());
            return 2;
        }
    };
    // `--threads 0` (unset) builds the pool at the ambient default, so
    // installing it unconditionally is behavior-preserving; thread count
    // affects wall-clock only, never output bytes.
    let threads = match parsed.get_parsed::<usize>("threads", 0) {
        Ok(n) => n,
        Err(e) => {
            let _ = writeln!(err, "error: {e}\n\n{}", usage());
            return 2;
        }
    };
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(err, "error: cannot build thread pool: {e}");
            return 2;
        }
    };
    let result = pool.install(|| match parsed.command.as_str() {
        "topology" => cmd::topology(&parsed, out),
        "log" => cmd::log(&parsed, out),
        "run" => cmd::run_sim(&parsed, out, false),
        "individual" => cmd::individual(&parsed, out),
        "compare" => cmd::run_sim(&parsed, out, true),
        "patterns" => cmd::patterns(&parsed, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    });
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(err, "error: {e}");
            1
        }
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "commsched — communication-aware job scheduling toolkit

USAGE:
  commsched topology validate <topology.conf>
  commsched topology show (--preset NAME | --conf FILE)
  commsched log generate --system NAME [--jobs N] [--seed S]
                         [--comm-pct P] [--pattern PAT] [--out FILE]
  commsched log stats (--swf FILE [--ppn N] | --system NAME [--jobs N] [--seed S])
  commsched run     (--preset NAME | --conf FILE) [--selector SEL] <workload>
                    [--backfill none|easy|conservative] [--drain N]
                    [--utilization BUCKETS] [<faults>] [--reject-oversized]
                    [--sa-budget N] [--sa-seed S] [<observe>]
  commsched compare (--preset NAME | --conf FILE) <workload> [<faults>]
                    [<observe>]   # one trace/report file per selector
  commsched individual (--preset NAME | --conf FILE) <workload>
                    [--warmup FRAC] [--probes N]
  commsched patterns [RANKS]

  <workload> = --swf FILE [--ppn N] | --system NAME [--jobs N] [--seed S]
               [--comm-pct P] [--pattern PAT]
  <faults>   = (--fault-trace FILE |
                [--mtbf SECS [--mttr SECS]]            # node churn
                [--switch-mtbf SECS [--switch-mttr SECS]]  # subtree outages
                [--link-degrade PERMILLE [--link-mtbf SECS] [--link-mttr SECS]]
                [--fault-seed S])
               [--failure-policy cancel|requeue|requeue-front]
               [--max-retries N] [--backoff SECS]
               the three generators compose; a switch fault downs every
               node under it, a link event degrades one directed cable to
               PERMILLE/1000 of nominal until its repair
  <observe>  = [--trace-out FILE] [--trace-filter job,fault,net|all]
               [--report-out FILE]
               trace files ending in .json use the Chrome trace_event
               format (open in ui.perfetto.dev); anything else is JSONL

  Every command also accepts --threads N (worker threads for parallel
  sections; default: RAYON_NUM_THREADS, then the host's CPU count).
  Thread count never changes output bytes.

  NAME (presets): iitk-dept | iitk-hpc2010 | cori | intrepid | theta | mira
                  | multirail-500k | dragonfly-1m
  NAME (systems): intrepid | theta | mira
  SEL:  default | greedy | balanced | adaptive | sa
        sa refines the adaptive placement with seeded simulated annealing:
        --sa-budget N evaluator calls per job (default 256; 0 = incumbent
        bit-for-bit), --sa-seed S search seed (default: the --seed value)
  PAT:  rd | rhvd | binomial | ring | stencil2d | alltoall"
}

#[cfg(test)]
mod tests;
