//! `commsched` binary: see [`commsched_cli::usage`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = commsched_cli::run(
        &argv,
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    );
    std::process::exit(code);
}
