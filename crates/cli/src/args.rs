//! Minimal argument parsing: `command [subcommand] [positional...]
//! [--flag value | --switch]...`, no external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// First token ("topology", "run", ...). Empty if none given.
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--key value` flags (every flag here takes a value).
    pub flags: BTreeMap<String, String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["--json", "--quiet", "--reject-oversized"];

impl Parsed {
    /// Parse raw arguments (program name already stripped).
    pub fn new(argv: &[String]) -> Result<Self, ArgError> {
        let mut parsed = Parsed::default();
        let mut it = argv.iter().peekable();
        parsed.command = it
            .next()
            .cloned()
            .ok_or_else(|| ArgError("no command given".into()))?;
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if SWITCHES.contains(&tok.as_str()) {
                    parsed.flags.insert(name.to_string(), String::new());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                if value.starts_with("--") {
                    return Err(ArgError(format!("--{name} needs a value, got {value}")));
                }
                parsed.flags.insert(name.to_string(), value.clone());
            } else {
                parsed.positional.push(tok.clone());
            }
        }
        Ok(parsed)
    }

    /// A required `--flag`.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    /// An optional `--flag`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed `--flag`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Is a no-value switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}
