//! Job logs: the Standard Workload Format and synthetic system models.
//!
//! The paper evaluates on 1000-job slices of three production logs —
//! Intrepid (Parallel Workload Archive, 2009), Theta (ALCF, 2018) and Mira
//! (ALCF, 2019). Those logs cannot be redistributed here, so this crate
//! provides both:
//!
//! * an **SWF parser/writer** ([`swf`]) so real Parallel Workload Archive
//!   logs drop in unchanged, and
//! * **seeded synthetic generators** ([`LogSpec`]) calibrated to the
//!   marginals the paper reports: job counts, maximum node requests
//!   (40960 / 512 / 16384), power-of-two request fractions (>=99% / 90% /
//!   >=99%), heavy-tailed runtimes and bursty arrivals.
//!
//! Job *nature* (communication- vs compute-intensive), the dominant
//! collective pattern, and per-job communication fractions are not present
//! in any log — the paper assigns them synthetically (§5.1, §6.2) and so
//! does this crate: [`LogSpec::comm_percent`] controls the 30–90% sweep and
//! [`MixSet`] reproduces the paper's experiment sets A–E.
//!
//! # Example
//!
//! ```
//! use commsched_workload::{LogSpec, SystemModel};
//! use commsched_collectives::Pattern;
//!
//! // 1000 Theta-like jobs, 90% communication-intensive, all RHVD.
//! let log = LogSpec::new(SystemModel::theta(), 1000, 42)
//!     .comm_percent(90)
//!     .pattern(Pattern::Rhvd)
//!     .generate();
//! assert_eq!(log.jobs.len(), 1000);
//! assert!(log.jobs.iter().all(|j| j.nodes <= 512));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod fault;
mod generate;
mod model;
pub mod stats;
pub mod swf;

pub use commsched_core::{JobId, JobNature};
pub use fault::{
    FaultDomain, FaultEvent, FaultKind, FaultTrace, FaultTraceError, FaultTraceErrorKind,
};
pub use generate::{LogSpec, MixSet};
pub use model::{Job, JobLog, SystemModel};
pub use stats::LogProfile;

#[cfg(test)]
mod tests;
