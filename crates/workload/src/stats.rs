//! Log profiling: the summary a site administrator (or a reviewer
//! checking our synthetic logs against the paper's marginals) wants.

use crate::model::JobLog;
use serde::{Deserialize, Serialize};

/// Aggregate profile of a job log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogProfile {
    /// Log name.
    pub name: String,
    /// Number of jobs.
    pub jobs: usize,
    /// Smallest / median / largest node request.
    pub nodes_min: usize,
    /// Median node request.
    pub nodes_median: usize,
    /// Largest node request.
    pub nodes_max: usize,
    /// Fraction of power-of-two requests.
    pub pow2_fraction: f64,
    /// Percentage of communication-intensive jobs.
    pub comm_percent: f64,
    /// Shortest / median / longest runtime (seconds).
    pub runtime_min: u64,
    /// Median runtime (seconds).
    pub runtime_median: u64,
    /// Longest runtime (seconds).
    pub runtime_max: u64,
    /// Mean interarrival gap (seconds).
    pub mean_interarrival: f64,
    /// Span from first submit to last submit (seconds).
    pub span: u64,
    /// Total node-hours of recorded runtimes.
    pub total_node_hours: f64,
    /// Offered load against a machine of `machine_nodes` nodes:
    /// `total node-seconds / (machine_nodes * span)`. >1 means the log
    /// oversubscribes the machine (queues must grow).
    pub offered_load: f64,
    /// Histogram of log2(node request), index = exponent.
    pub size_histogram: Vec<(usize, usize)>,
}

impl LogProfile {
    /// Profile `log` against a machine of `machine_nodes` nodes.
    pub fn new(log: &JobLog, machine_nodes: usize) -> Self {
        let n = log.jobs.len();
        let mut sizes: Vec<usize> = log.jobs.iter().map(|j| j.nodes).collect();
        sizes.sort_unstable();
        let mut runtimes: Vec<u64> = log.jobs.iter().map(|j| j.runtime).collect();
        runtimes.sort_unstable();

        let span = match (log.jobs.first(), log.jobs.last()) {
            (Some(a), Some(b)) => b.submit - a.submit,
            _ => 0,
        };
        let gaps: Vec<f64> = log
            .jobs
            .windows(2)
            .map(|w| (w[1].submit - w[0].submit) as f64)
            .collect();
        let mean_interarrival = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };

        let node_seconds: u64 = log.jobs.iter().map(|j| j.node_seconds()).sum();
        let offered_load = if span > 0 && machine_nodes > 0 {
            node_seconds as f64 / (machine_nodes as f64 * span as f64)
        } else {
            0.0
        };

        // Histogram over log2 buckets (non-powers land in their floor).
        let mut hist: std::collections::BTreeMap<usize, usize> = Default::default();
        for &s in &sizes {
            *hist.entry((s.max(1)).ilog2() as usize).or_default() += 1;
        }

        LogProfile {
            name: log.name.clone(),
            jobs: n,
            nodes_min: sizes.first().copied().unwrap_or(0),
            nodes_median: sizes.get(n / 2).copied().unwrap_or(0),
            nodes_max: sizes.last().copied().unwrap_or(0),
            pow2_fraction: log.pow2_fraction(),
            comm_percent: log.comm_percent(),
            runtime_min: runtimes.first().copied().unwrap_or(0),
            runtime_median: runtimes.get(n / 2).copied().unwrap_or(0),
            runtime_max: runtimes.last().copied().unwrap_or(0),
            mean_interarrival,
            span,
            total_node_hours: log.total_node_hours(),
            offered_load,
            size_histogram: hist.into_iter().collect(),
        }
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "log {:?}: {} jobs over {:.1} h (mean gap {:.0} s)\n\
             nodes: min {} / median {} / max {}  ({:.1}% powers of two)\n\
             runtime: min {} s / median {} s / max {} s\n\
             {:.1}% communication-intensive, {:.0} node-hours total, \
             offered load {:.2}\n",
            self.name,
            self.jobs,
            self.span as f64 / 3600.0,
            self.mean_interarrival,
            self.nodes_min,
            self.nodes_median,
            self.nodes_max,
            100.0 * self.pow2_fraction,
            self.runtime_min,
            self.runtime_median,
            self.runtime_max,
            self.comm_percent,
            self.total_node_hours,
            self.offered_load,
        );
        let peak = self
            .size_histogram
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(exp, count) in &self.size_histogram {
            out.push_str(&format!(
                "  2^{exp:<2} ({:>6} nodes)  {:>5}  {}\n",
                1usize << exp,
                count,
                "#".repeat(count * 40 / peak)
            ));
        }
        out
    }
}
