//! Standard Workload Format (SWF) parsing and emission.
//!
//! The Parallel Workload Archive distributes logs — including the Intrepid
//! log the paper uses — in SWF: `;`-prefixed header comments followed by
//! one line of 18 whitespace-separated integer fields per job
//! (Feitelson et al.). This module reads the fields the scheduler needs and
//! can write a [`JobLog`] back out for interchange.
//!
//! Missing values are encoded as `-1` in SWF; we substitute sensible
//! fallbacks (requested ← used, walltime ← runtime).

use crate::model::{Job, JobLog};
use commsched_core::{JobId, JobNature};
use std::fmt;

/// SWF field indices (0-based) of the columns we consume.
const F_JOB: usize = 0;
const F_SUBMIT: usize = 1;
const F_RUN: usize = 3;
const F_PROCS_USED: usize = 4;
const F_PROCS_REQ: usize = 7;
const F_TIME_REQ: usize = 8;
const F_STATUS: usize = 10;
const FIELDS: usize = 18;

/// SWF column name for a consumed 0-based field index (Feitelson et al.).
fn field_name(i: usize) -> &'static str {
    match i {
        F_JOB => "job_number",
        F_SUBMIT => "submit_time",
        F_RUN => "run_time",
        F_PROCS_USED => "allocated_processors",
        F_PROCS_REQ => "requested_processors",
        F_TIME_REQ => "requested_time",
        F_STATUS => "status",
        _ => "unknown",
    }
}

/// A parse failure, with the 1-based line number and offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// Line the error occurred on (1-based; 0 when not line-specific).
    pub line: usize,
    /// SWF column name the error refers to, when a single field is at fault.
    pub field: Option<&'static str>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SWF line {}", self.line)?;
        if let Some(field) = self.field {
            write!(f, " field '{field}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for SwfError {}

/// Parse an SWF document into a [`JobLog`].
///
/// * Jobs with non-positive runtime or zero processors are skipped, like
///   the paper's preprocessing (cancelled/failed stubs).
/// * `procs_per_node` converts SWF processor counts to whole nodes
///   (Intrepid: 4, Mira: 16, Theta: 64); counts round up.
/// * All jobs come out compute-intensive with no pattern — callers assign
///   natures with [`assign_natures`], as the paper does (§5.1).
pub fn parse(text: &str, name: &str, procs_per_node: usize) -> Result<JobLog, SwfError> {
    if procs_per_node == 0 {
        return Err(SwfError {
            line: 0,
            field: None,
            message: "procs_per_node must be at least 1".into(),
        });
    }
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < FIELDS {
            return Err(SwfError {
                line: lineno + 1,
                field: None,
                message: format!("expected {FIELDS} fields, found {}", fields.len()),
            });
        }
        let get = |i: usize| -> Result<i64, SwfError> {
            fields[i].parse().map_err(|_| SwfError {
                line: lineno + 1,
                field: Some(field_name(i)),
                message: format!("column {} is not an integer: {:?}", i + 1, fields[i]),
            })
        };
        let id = get(F_JOB)?;
        let submit = get(F_SUBMIT)?.max(0) as u64;
        let runtime = get(F_RUN)?;
        let status = get(F_STATUS)?;
        let procs_used = get(F_PROCS_USED)?;
        let procs_req = get(F_PROCS_REQ)?;
        let time_req = get(F_TIME_REQ)?;

        let procs = if procs_req > 0 { procs_req } else { procs_used };
        if runtime <= 0 || procs <= 0 || status == 0 || status == 5 {
            // Failed (0) and cancelled (5) jobs never occupied the machine
            // for a meaningful duration in the paper's replay.
            continue;
        }
        let runtime = runtime as u64;
        let walltime = if time_req > 0 {
            (time_req as u64).max(runtime)
        } else {
            runtime
        };
        let nodes = (procs as usize).div_ceil(procs_per_node);
        jobs.push(Job {
            id: JobId(id.max(0) as u64),
            submit,
            runtime,
            walltime,
            nodes,
            nature: JobNature::ComputeIntensive,
            comm: Vec::new(),
        });
    }
    Ok(JobLog::new(name, jobs))
}

/// Emit a [`JobLog`] as SWF (18 fields; unknowns written as `-1`).
pub fn emit(log: &JobLog) -> String {
    let mut out = String::new();
    out.push_str("; SWF written by commsched-workload\n");
    out.push_str(&format!("; Jobs: {}\n", log.jobs.len()));
    for j in &log.jobs {
        // job submit wait run used_procs avg_cpu mem req_procs req_time
        // req_mem status uid gid exe queue partition preceding think
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            j.id.0, j.submit, j.runtime, j.nodes, j.nodes, j.walltime
        ));
    }
    out
}

/// Assign natures/patterns to a parsed log the way [`crate::LogSpec`]
/// does for synthetic ones: `pct`% of jobs (chosen by a seeded shuffle)
/// become communication-intensive with the given components. Percentages
/// above 100 are clamped to 100.
pub fn assign_natures(
    log: &mut JobLog,
    pct: u8,
    components: &[(commsched_collectives::Pattern, f64)],
    seed: u64,
) {
    use rand::prelude::*;
    let pct = pct.min(100);
    let n = log.jobs.len();
    let n_comm = n * pct as usize / 100;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    for j in log.jobs.iter_mut() {
        j.nature = JobNature::ComputeIntensive;
        j.comm.clear();
    }
    for &k in idx.iter().take(n_comm) {
        log.jobs[k].nature = JobNature::CommIntensive;
        log.jobs[k].comm = components.to_vec();
    }
}
