//! Seeded synthetic log generation calibrated to the paper's marginals.

use crate::model::{Job, JobLog, SystemModel};
use commsched_collectives::Pattern;
use commsched_core::{JobId, JobNature};
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;

/// The paper's §6.2 experiment sets: per-job compute/communication splits.
///
/// Each communication-intensive job divides its runtime into a compute part
/// and one or two collective components. Sets D and E model CMC2D-like
/// proxy apps that mix RD with binomial collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixSet {
    /// 67% compute, 33% RHVD.
    A,
    /// 50% compute, 50% RHVD.
    B,
    /// 30% compute, 70% RHVD.
    C,
    /// 50% compute, 15% RD, 35% binomial (CMC2D-like).
    D,
    /// 30% compute, 21% RD, 49% binomial (CMC2D-like, heavier comm).
    E,
}

impl MixSet {
    /// All five sets in the paper's order.
    pub const ALL: [MixSet; 5] = [MixSet::A, MixSet::B, MixSet::C, MixSet::D, MixSet::E];

    /// `(pattern, fraction-of-runtime)` components of a comm-intensive job.
    pub fn components(self) -> Vec<(Pattern, f64)> {
        match self {
            MixSet::A => vec![(Pattern::Rhvd, 0.33)],
            MixSet::B => vec![(Pattern::Rhvd, 0.50)],
            MixSet::C => vec![(Pattern::Rhvd, 0.70)],
            MixSet::D => vec![(Pattern::Rd, 0.15), (Pattern::Binomial, 0.35)],
            MixSet::E => vec![(Pattern::Rd, 0.21), (Pattern::Binomial, 0.49)],
        }
    }

    /// Compute fraction (1 − total communication fraction).
    pub fn compute_fraction(self) -> f64 {
        1.0 - self.components().iter().map(|(_, f)| f).sum::<f64>()
    }

    /// Label used in figures ("A".."E").
    pub fn label(self) -> &'static str {
        match self {
            MixSet::A => "A",
            MixSet::B => "B",
            MixSet::C => "C",
            MixSet::D => "D",
            MixSet::E => "E",
        }
    }
}

/// Builder for a synthetic job log.
///
/// Deterministic: the same spec (including seed) always generates the same
/// log, on every platform (ChaCha12 RNG, no platform-dependent
/// distributions).
#[derive(Debug, Clone)]
pub struct LogSpec {
    system: SystemModel,
    jobs: usize,
    seed: u64,
    comm_percent: u8,
    components: Vec<(Pattern, f64)>,
    diurnal: bool,
}

impl LogSpec {
    /// A spec for `jobs` jobs on `system`, seeded by `seed`.
    ///
    /// Defaults: 90% communication-intensive jobs, each spending 50% of its
    /// runtime in RHVD (the paper's Table 3 top sub-rows).
    pub fn new(system: SystemModel, jobs: usize, seed: u64) -> Self {
        LogSpec {
            system,
            jobs,
            seed,
            comm_percent: 90,
            components: vec![(Pattern::Rhvd, 0.5)],
            diurnal: false,
        }
    }

    /// Modulate arrivals with a day/night cycle: submissions are ~3x
    /// denser during working hours (08:00-20:00) than at night, the
    /// pattern production logs show. Off by default so the paper
    /// experiments stay at a stationary load.
    pub fn diurnal(mut self, on: bool) -> Self {
        self.diurnal = on;
        self
    }

    /// Percentage (0–100) of communication-intensive jobs (§6.5 varies
    /// this over 30 / 60 / 90).
    pub fn comm_percent(mut self, pct: u8) -> Self {
        assert!(pct <= 100);
        self.comm_percent = pct;
        self
    }

    /// Give every communication-intensive job a single collective pattern
    /// at the current total communication fraction.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        let total: f64 = self.components.iter().map(|(_, f)| f).sum();
        self.components = vec![(pattern, total)];
        self
    }

    /// Set the communication fraction, keeping the current pattern split's
    /// relative weights.
    pub fn comm_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let total: f64 = self.components.iter().map(|(_, f)| f).sum();
        if total > 0.0 {
            for c in &mut self.components {
                c.1 *= fraction / total;
            }
        }
        self
    }

    /// Use one of the paper's experiment sets A–E (§6.2).
    pub fn mix(mut self, set: MixSet) -> Self {
        self.components = set.components();
        self
    }

    /// Generate the log.
    pub fn generate(&self) -> JobLog {
        let sys = &self.system;
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed ^ 0x636f_6d6d_7363_6864);
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut submit = 0u64;

        for i in 0..self.jobs {
            // Bursty Poisson arrivals: exponential interarrival with an
            // occasional burst (several jobs submitted together), which
            // production logs show and which exercises backfilling.
            if rng.random::<f64>() < 0.85 || i == 0 {
                let u: f64 = rng.random::<f64>().max(1e-12);
                let mut gap = -u.ln() * sys.mean_interarrival;
                if self.diurnal {
                    // 08:00-20:00 dense (x0.6), night sparse (x1.8);
                    // keeps the same mean over a full day.
                    let hour = (submit / 3600) % 24;
                    gap *= if (8..20).contains(&hour) { 0.6 } else { 1.8 };
                }
                submit += gap as u64;
            }
            let nodes = self.sample_nodes(&mut rng);
            let runtime = self.sample_runtime(&mut rng);
            let walltime = ((runtime as f64)
                * (1.0 + (sys.walltime_slack - 1.0) * rng.random::<f64>() * 2.0))
                .max(runtime as f64) as u64;
            jobs.push(Job {
                id: JobId(i as u64 + 1),
                submit,
                runtime,
                walltime,
                nodes,
                nature: JobNature::ComputeIntensive, // assigned below
                comm: Vec::new(),
            });
        }

        // Assign natures: exactly floor(pct% * n) comm-intensive jobs,
        // spread uniformly by a seeded shuffle of indices.
        let n_comm = self.jobs * self.comm_percent as usize / 100;
        let mut idx: Vec<usize> = (0..self.jobs).collect();
        idx.shuffle(&mut rng);
        for &k in idx.iter().take(n_comm) {
            jobs[k].nature = JobNature::CommIntensive;
            jobs[k].comm = self.components.clone();
        }

        JobLog::new(format!("{}-synthetic-seed{}", sys.name, self.seed), jobs)
    }

    /// Sample a node request: a power of two with probability
    /// `pow2_fraction` (geometric over exponents so small jobs dominate,
    /// as in production logs), otherwise uniform in range.
    fn sample_nodes(&self, rng: &mut ChaCha12Rng) -> usize {
        let sys = &self.system;
        let emin = sys.min_request.next_power_of_two().trailing_zeros();
        let emax = sys.max_request.ilog2();
        if rng.random::<f64>() < sys.pow2_fraction {
            // Geometric over exponents, ratio 0.62 per step.
            let mut e = emin;
            while e < emax && rng.random::<f64>() < 0.62 {
                e += 1;
            }
            1usize << e
        } else {
            let span = sys.max_request - sys.min_request;
            let mut v = sys.min_request + rng.random_range(0..=span);
            if v.is_power_of_two() {
                v = (v + 1).min(sys.max_request);
            }
            v
        }
    }

    /// Lognormal runtime via Box–Muller, floored at 60 s and capped at
    /// 24 h (PWA logs clean away longer outliers).
    fn sample_runtime(&self, rng: &mut ChaCha12Rng) -> u64 {
        let sys = &self.system;
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let t = sys.runtime_median * (sys.runtime_sigma * z).exp();
        t.clamp(60.0, 86_400.0) as u64
    }
}
