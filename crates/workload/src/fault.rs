//! Fault traces: deterministic node failure/recovery schedules.
//!
//! A [`FaultTrace`] is an ordered list of [`FaultEvent`]s — node `Fail`,
//! `Recover` and `Drain` transitions at virtual-time instants — consumed by
//! the simulation engine alongside a job log. Traces come from two sources:
//!
//! * an **explicit event list**, parsed from a small text format
//!   ([`FaultTrace::parse`], one `<time> <node> <fail|recover|drain>` event
//!   per line) or built programmatically; or
//! * a **seeded MTBF/MTTR generator** ([`FaultTrace::mtbf`]) that draws
//!   per-node exponential time-to-failure / time-to-repair sequences from a
//!   ChaCha stream, so the same `(nodes, mtbf, mttr, horizon, seed)` tuple
//!   always yields the same churn regardless of thread count or platform.
//!
//! Node indices are plain `usize` ordinals into the target topology's node
//! list; [`FaultTrace::validate`] range-checks them against a machine size
//! so a bad trace yields a typed error instead of an index panic downstream.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happens to the node at the event instant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum FaultKind {
    /// The node fails hard: any job running on it is killed.
    #[default]
    Fail,
    /// The node returns to service.
    Recover,
    /// The node is drained: it leaves service once its current job (if any)
    /// finishes; no job is killed.
    Drain,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Fail => "fail",
            FaultKind::Recover => "recover",
            FaultKind::Drain => "drain",
        })
    }
}

/// One node lifecycle transition at virtual time `t` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the transition, seconds since the run origin.
    pub t: u64,
    /// Node ordinal in the target topology (0-based).
    pub node: usize,
    /// Transition kind.
    pub kind: FaultKind,
}

/// A malformed or out-of-range fault trace, with source context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTraceError {
    /// 1-based source line for parse errors; `None` for semantic errors.
    pub line: Option<usize>,
    /// Offending field (`"time"`, `"node"`, `"kind"`), when known.
    pub field: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FaultTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault trace")?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        if let Some(field) = self.field {
            write!(f, " field '{field}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for FaultTraceError {}

impl FaultTraceError {
    fn at(line: usize, field: &'static str, message: impl Into<String>) -> Self {
        FaultTraceError {
            line: Some(line),
            field: Some(field),
            message: message.into(),
        }
    }

    fn semantic(message: impl Into<String>) -> Self {
        FaultTraceError {
            line: None,
            field: None,
            message: message.into(),
        }
    }
}

/// An ordered schedule of node fault events.
///
/// Events are kept sorted by `(t, node, kind)` so consumption order — and
/// therefore every downstream simulation — is deterministic even when the
/// trace was assembled out of order. At equal `(t, node)` a `Fail` sorts
/// before a `Recover`, so a zero-length outage is processed fail-first.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// A trace with no events (the failure-free default).
    pub fn empty() -> Self {
        FaultTrace { events: Vec::new() }
    }

    /// Build from an arbitrary event list; events are sorted and
    /// de-duplicated into canonical order.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_unstable();
        events.dedup();
        FaultTrace { events }
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in canonical `(t, node, kind)` order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Range-check every event against a machine of `num_nodes` nodes.
    pub fn validate(&self, num_nodes: usize) -> Result<(), FaultTraceError> {
        for e in &self.events {
            if e.node >= num_nodes {
                return Err(FaultTraceError::semantic(format!(
                    "event at t={} names node {} but the machine has {} nodes",
                    e.t, e.node, num_nodes
                )));
            }
        }
        Ok(())
    }

    /// Parse the text format: one `<time> <node> <fail|recover|drain>`
    /// triple per line, blank lines and `#` comments ignored.
    pub fn parse(text: &str) -> Result<Self, FaultTraceError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let t_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "time", "missing time"))?;
            let t: u64 = t_str.parse().map_err(|_| {
                FaultTraceError::at(lineno, "time", format!("'{t_str}' is not a u64"))
            })?;
            let node_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "node", "missing node ordinal"))?;
            let node: usize = node_str.parse().map_err(|_| {
                FaultTraceError::at(
                    lineno,
                    "node",
                    format!("'{node_str}' is not a node ordinal"),
                )
            })?;
            let kind_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "kind", "missing event kind"))?;
            let kind = match kind_str {
                "fail" => FaultKind::Fail,
                "recover" => FaultKind::Recover,
                "drain" => FaultKind::Drain,
                other => {
                    return Err(FaultTraceError::at(
                        lineno,
                        "kind",
                        format!("'{other}' is not one of fail|recover|drain"),
                    ));
                }
            };
            if let Some(extra) = fields.next() {
                return Err(FaultTraceError::at(
                    lineno,
                    "kind",
                    format!("trailing garbage '{extra}' after event"),
                ));
            }
            events.push(FaultEvent { t, node, kind });
        }
        Ok(FaultTrace::new(events))
    }

    /// Render in the [`FaultTrace::parse`] text format.
    pub fn emit(&self) -> String {
        let mut out = String::from("# time node kind\n");
        for e in &self.events {
            out.push_str(&format!("{} {} {}\n", e.t, e.node, e.kind));
        }
        out
    }

    /// Generate a seeded MTBF/MTTR churn schedule over `[0, horizon)`.
    ///
    /// Each node alternates exponential up-times (mean `mtbf_secs`) and
    /// down-times (mean `mttr_secs`), sampled node-by-node in ordinal order
    /// from one ChaCha12 stream seeded with `seed` — fully deterministic.
    /// Every `Fail` that lands inside the horizon is paired with its
    /// `Recover` (which may land beyond the horizon, so a run that outlives
    /// the horizon still gets its nodes back).
    pub fn mtbf(
        num_nodes: usize,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, FaultTraceError> {
        if !(mtbf_secs.is_finite() && mtbf_secs > 0.0) {
            return Err(FaultTraceError::semantic(format!(
                "mtbf must be a positive finite number of seconds, got {mtbf_secs}"
            )));
        }
        if !(mttr_secs.is_finite() && mttr_secs > 0.0) {
            return Err(FaultTraceError::semantic(format!(
                "mttr must be a positive finite number of seconds, got {mttr_secs}"
            )));
        }
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        // Exponential draw: -mean * ln(1 - u), u uniform in [0, 1); at
        // least one second so virtual time always advances.
        let mut exp = |mean: f64| -> u64 {
            let u: f64 = rng.random();
            let secs = -mean * (1.0 - u).ln();
            (secs.ceil() as u64).max(1)
        };
        let mut events = Vec::new();
        for node in 0..num_nodes {
            let mut t: u64 = 0;
            loop {
                t = t.saturating_add(exp(mtbf_secs));
                if t >= horizon {
                    break;
                }
                events.push(FaultEvent {
                    t,
                    node,
                    kind: FaultKind::Fail,
                });
                t = t.saturating_add(exp(mttr_secs));
                events.push(FaultEvent {
                    t,
                    node,
                    kind: FaultKind::Recover,
                });
            }
        }
        Ok(FaultTrace::new(events))
    }
}
