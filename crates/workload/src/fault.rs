//! Fault traces: deterministic failure/recovery schedules over three
//! hierarchical fault domains.
//!
//! A [`FaultTrace`] is an ordered list of [`FaultEvent`]s consumed by the
//! simulation engine alongside a job log. Events target one of three
//! **fault domains** ([`FaultDomain`]):
//!
//! * **nodes** — `Fail`, `Recover` and `Drain` transitions, exactly the
//!   PR-3 model;
//! * **switches** — `SwitchDown`/`SwitchUp` transitions that take an entire
//!   subtree out of (and back into) service: one switch event is a
//!   *correlated* failure of every descendant node;
//! * **links** — `LinkDegrade`/`LinkRestore` transitions that reduce a
//!   directed link's capacity to `permille/1000` of nominal (and restore
//!   it), degrading communication instead of killing jobs.
//!
//! Traces come from two sources:
//!
//! * an **explicit event list**, parsed from a small text format
//!   ([`FaultTrace::parse`], one `<time> <target> <kind> [<arg>]` event per
//!   line) or built programmatically; or
//! * **seeded MTBF/MTTR generators** ([`FaultTrace::mtbf`],
//!   [`FaultTrace::switch_mtbf`], [`FaultTrace::link_degrade`]) that draw
//!   per-target exponential sequences from a ChaCha stream, so the same
//!   parameter tuple always yields the same churn regardless of thread
//!   count or platform. Compose domains with [`FaultTrace::merge`].
//!
//! Target indices are plain `usize` ordinals into the topology's node,
//! switch, or directed-link spaces; [`FaultTrace::validate_machine`]
//! range-checks them so a bad trace yields a typed error instead of an
//! index panic downstream.

use commsched_num::u64_of_f64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The topology stratum a fault event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultDomain {
    /// A single compute node.
    Node,
    /// A switch: the event covers its entire subtree.
    Switch,
    /// A directed network link.
    Link,
}

impl fmt::Display for FaultDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultDomain::Node => "node",
            FaultDomain::Switch => "switch",
            FaultDomain::Link => "link",
        })
    }
}

/// What happens to the target at the event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FaultKind {
    /// The node fails hard: any job running on it is killed.
    #[default]
    Fail,
    /// The node returns to service.
    Recover,
    /// The node is drained: it leaves service once its current job (if any)
    /// finishes; no job is killed.
    Drain,
    /// The switch fails hard: every job with a node in its subtree is
    /// killed and all descendant nodes leave service (correlated failure).
    SwitchDown,
    /// The switch (and every descendant node that did not fail on its own)
    /// returns to service.
    SwitchUp,
    /// The directed link's capacity drops to `permille/1000` of nominal
    /// (1..=1000). A second degrade on an already-degraded link *updates*
    /// the factor. No job is killed; communication slows down.
    LinkDegrade {
        /// New capacity in thousandths of nominal, 1..=1000.
        permille: u32,
    },
    /// The directed link returns to nominal capacity.
    LinkRestore,
}

impl FaultKind {
    /// The fault domain this kind applies to.
    pub fn domain(self) -> FaultDomain {
        match self {
            FaultKind::Fail | FaultKind::Recover | FaultKind::Drain => FaultDomain::Node,
            FaultKind::SwitchDown | FaultKind::SwitchUp => FaultDomain::Switch,
            FaultKind::LinkDegrade { .. } | FaultKind::LinkRestore => FaultDomain::Link,
        }
    }

    /// For link kinds, the capacity factor in `(0, 1]` this event sets
    /// (`permille / 1000` for a degrade, `1.0` for a restore); `None` for
    /// node and switch kinds.
    pub fn capacity_factor(self) -> Option<f64> {
        match self {
            FaultKind::LinkDegrade { permille } => Some(f64::from(permille) / 1000.0),
            FaultKind::LinkRestore => Some(1.0),
            FaultKind::Fail
            | FaultKind::Recover
            | FaultKind::Drain
            | FaultKind::SwitchDown
            | FaultKind::SwitchUp => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Fail => "fail",
            FaultKind::Recover => "recover",
            FaultKind::Drain => "drain",
            FaultKind::SwitchDown => "down",
            FaultKind::SwitchUp => "up",
            FaultKind::LinkDegrade { .. } => "degrade",
            FaultKind::LinkRestore => "restore",
        })
    }
}

// Hand-written: the vendored serde derive covers unit variants only, and
// `LinkDegrade` carries its permille. Unit kinds render as their
// [`fmt::Display`] token; a degrade renders as `{"degrade": permille}`.
impl Serialize for FaultKind {
    fn to_json_value(&self) -> serde::Value {
        match self {
            FaultKind::LinkDegrade { permille } => {
                serde::Value::Object(vec![("degrade".to_string(), permille.to_json_value())])
            }
            other => serde::Value::String(other.to_string()),
        }
    }
}

impl Deserialize for FaultKind {}

/// One fault transition at virtual time `t` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time of the transition, seconds since the run origin.
    pub t: u64,
    /// Target ordinal (0-based) in the domain implied by `kind`: a node
    /// ordinal for node kinds, a switch id for switch kinds, a directed
    /// link id for link kinds. Named `node` for backward compatibility
    /// with the PR-3 node-only model.
    pub node: usize,
    /// Transition kind (also fixes the target's [`FaultDomain`]).
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The fault domain of this event's target.
    pub fn domain(&self) -> FaultDomain {
        self.kind.domain()
    }
}

/// Classification of a [`FaultTraceError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTraceErrorKind {
    /// The text did not parse (bad field, unknown kind, garbage).
    Syntax,
    /// The trace is well-formed but names an impossible machine element or
    /// parameter (out-of-range target, non-positive MTBF, bad permille).
    Semantic,
    /// Two down intervals for the same target overlap: a `fail` (or
    /// `down`) arrives while the target is already down, so the earlier
    /// interval has no matching `recover`/`up`.
    Overlap,
}

/// A malformed or out-of-range fault trace, with source context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTraceError {
    /// What class of error this is.
    pub kind: FaultTraceErrorKind,
    /// 1-based source line for parse errors; `None` for semantic errors.
    pub line: Option<usize>,
    /// Offending field (`"time"`, `"target"`, `"kind"`, ...), when known.
    pub field: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FaultTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault trace")?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        if let Some(field) = self.field {
            write!(f, " field '{field}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for FaultTraceError {}

impl FaultTraceError {
    fn at(line: usize, field: &'static str, message: impl Into<String>) -> Self {
        FaultTraceError {
            kind: FaultTraceErrorKind::Syntax,
            line: Some(line),
            field: Some(field),
            message: message.into(),
        }
    }

    fn semantic(message: impl Into<String>) -> Self {
        FaultTraceError {
            kind: FaultTraceErrorKind::Semantic,
            line: None,
            field: None,
            message: message.into(),
        }
    }

    fn overlap(message: impl Into<String>) -> Self {
        FaultTraceError {
            kind: FaultTraceErrorKind::Overlap,
            line: None,
            field: None,
            message: message.into(),
        }
    }
}

/// An ordered schedule of fault events across all three domains.
///
/// Events are kept sorted by `(t, target, kind)` so consumption order — and
/// therefore every downstream simulation — is deterministic even when the
/// trace was assembled out of order. At equal `(t, target)` a `Fail` sorts
/// before a `Recover`, so a zero-length outage is processed fail-first.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// A trace with no events (the failure-free default).
    pub fn empty() -> Self {
        FaultTrace { events: Vec::new() }
    }

    /// Build from an arbitrary event list; events are sorted and
    /// de-duplicated into canonical order.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_unstable();
        events.dedup();
        FaultTrace { events }
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in canonical `(t, target, kind)` order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if any event targets the given domain.
    pub fn has_domain(&self, domain: FaultDomain) -> bool {
        self.events.iter().any(|e| e.domain() == domain)
    }

    /// Merge two traces into one canonical schedule.
    pub fn merge(self, other: FaultTrace) -> FaultTrace {
        let mut events = self.events;
        events.extend(other.events);
        FaultTrace::new(events)
    }

    /// Range-check every *node*-domain event against a machine of
    /// `num_nodes` nodes. Kept for the PR-3 node-only call sites; switch
    /// and link events are not checked here — use
    /// [`FaultTrace::validate_machine`] when the topology is known.
    pub fn validate(&self, num_nodes: usize) -> Result<(), FaultTraceError> {
        for e in &self.events {
            if e.domain() == FaultDomain::Node && e.node >= num_nodes {
                return Err(FaultTraceError::semantic(format!(
                    "event at t={} names node {} but the machine has {} nodes",
                    e.t, e.node, num_nodes
                )));
            }
        }
        Ok(())
    }

    /// Range-check every event against a machine with `num_nodes` nodes,
    /// `num_switches` switches and `num_links` directed links.
    pub fn validate_machine(
        &self,
        num_nodes: usize,
        num_switches: usize,
        num_links: usize,
    ) -> Result<(), FaultTraceError> {
        for e in &self.events {
            let (bound, what) = match e.domain() {
                FaultDomain::Node => (num_nodes, "nodes"),
                FaultDomain::Switch => (num_switches, "switches"),
                FaultDomain::Link => (num_links, "directed links"),
            };
            if e.node >= bound {
                return Err(FaultTraceError::semantic(format!(
                    "event at t={} names {} {} but the machine has {} {}",
                    e.t,
                    e.domain(),
                    e.node,
                    bound,
                    what
                )));
            }
            if let FaultKind::LinkDegrade { permille } = e.kind {
                if !(1..=1000).contains(&permille) {
                    return Err(FaultTraceError::semantic(format!(
                        "event at t={} degrades link {} to {} permille; must be 1..=1000 \
                         (a dead link is a switch/node failure, not a degrade)",
                        e.t, e.node, permille
                    )));
                }
            }
        }
        Ok(())
    }

    /// Reject overlapping down intervals: a second `fail` on an
    /// already-failed node, or a second `down` on an already-down switch,
    /// means the earlier interval is missing its `recover`/`up` and the
    /// trace would silently churn state. Link re-degrades are legal (they
    /// update the factor) and drains are idempotent, so neither is checked.
    fn check_overlaps(&self) -> Result<(), FaultTraceError> {
        // Sorted by (t, target, kind), so each (domain, target) stream is
        // visited in time order.
        let mut down_since: BTreeMap<(FaultDomain, usize), u64> = BTreeMap::new();
        for e in &self.events {
            let key = (e.domain(), e.node);
            match e.kind {
                FaultKind::Fail | FaultKind::SwitchDown => {
                    if let Some(&t0) = down_since.get(&key) {
                        return Err(FaultTraceError::overlap(format!(
                            "{} {} goes down at t={} but is already down since t={} \
                             (overlapping down intervals; missing {})",
                            e.domain(),
                            e.node,
                            e.t,
                            t0,
                            if e.domain() == FaultDomain::Switch {
                                "up"
                            } else {
                                "recover"
                            }
                        )));
                    }
                    down_since.insert(key, e.t);
                }
                FaultKind::Recover | FaultKind::SwitchUp => {
                    down_since.remove(&key);
                }
                FaultKind::Drain | FaultKind::LinkDegrade { .. } | FaultKind::LinkRestore => {}
            }
        }
        Ok(())
    }

    /// Parse the text format: one event per line, blank lines and `#`
    /// comments ignored. Each line is `<time> <target> <kind> [<arg>]`:
    ///
    /// ```text
    /// # time target kind
    /// 120  7         fail          # node 7 fails (bare ordinal = node)
    /// 240  node:7    recover       # explicit node prefix also accepted
    /// 300  switch:2  down          # switch 2 and its whole subtree fail
    /// 600  switch:2  up
    /// 700  link:13   degrade 500   # directed link 13 at 50.0% capacity
    /// 900  link:13   restore
    /// ```
    ///
    /// The PR-3 node-only format (`<time> <node> <fail|recover|drain>`) is
    /// a strict subset. Overlapping down intervals for the same target are
    /// rejected with a [`FaultTraceErrorKind::Overlap`] error.
    pub fn parse(text: &str) -> Result<Self, FaultTraceError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let t_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "time", "missing time"))?;
            let t: u64 = t_str.parse().map_err(|_| {
                FaultTraceError::at(lineno, "time", format!("'{t_str}' is not a u64"))
            })?;
            let target_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "target", "missing target ordinal"))?;
            let (domain, ord_str) = match target_str.split_once(':') {
                Some(("node", rest)) => (FaultDomain::Node, rest),
                Some(("switch", rest)) => (FaultDomain::Switch, rest),
                Some(("link", rest)) => (FaultDomain::Link, rest),
                Some((prefix, _)) => {
                    return Err(FaultTraceError::at(
                        lineno,
                        "target",
                        format!("'{prefix}' is not one of node|switch|link"),
                    ));
                }
                None => (FaultDomain::Node, target_str),
            };
            let node: usize = ord_str.parse().map_err(|_| {
                FaultTraceError::at(
                    lineno,
                    "target",
                    format!("'{ord_str}' is not a {domain} ordinal"),
                )
            })?;
            let kind_str = fields
                .next()
                .ok_or_else(|| FaultTraceError::at(lineno, "kind", "missing event kind"))?;
            let kind = match (domain, kind_str) {
                (FaultDomain::Node, "fail") => FaultKind::Fail,
                (FaultDomain::Node, "recover") => FaultKind::Recover,
                (FaultDomain::Node, "drain") => FaultKind::Drain,
                (FaultDomain::Node, other) => {
                    return Err(FaultTraceError::at(
                        lineno,
                        "kind",
                        format!("'{other}' is not one of fail|recover|drain for a node target"),
                    ));
                }
                (FaultDomain::Switch, "down") => FaultKind::SwitchDown,
                (FaultDomain::Switch, "up") => FaultKind::SwitchUp,
                (FaultDomain::Switch, other) => {
                    return Err(FaultTraceError::at(
                        lineno,
                        "kind",
                        format!("'{other}' is not one of down|up for a switch target"),
                    ));
                }
                (FaultDomain::Link, "degrade") => {
                    let p_str = fields.next().ok_or_else(|| {
                        FaultTraceError::at(
                            lineno,
                            "permille",
                            "degrade needs a permille (1..=1000)",
                        )
                    })?;
                    let permille: u32 = p_str.parse().map_err(|_| {
                        FaultTraceError::at(
                            lineno,
                            "permille",
                            format!("'{p_str}' is not a permille (1..=1000)"),
                        )
                    })?;
                    if !(1..=1000).contains(&permille) {
                        return Err(FaultTraceError::at(
                            lineno,
                            "permille",
                            format!("permille {permille} out of range 1..=1000"),
                        ));
                    }
                    FaultKind::LinkDegrade { permille }
                }
                (FaultDomain::Link, "restore") => FaultKind::LinkRestore,
                (FaultDomain::Link, other) => {
                    return Err(FaultTraceError::at(
                        lineno,
                        "kind",
                        format!("'{other}' is not one of degrade|restore for a link target"),
                    ));
                }
            };
            if let Some(extra) = fields.next() {
                return Err(FaultTraceError::at(
                    lineno,
                    "kind",
                    format!("trailing garbage '{extra}' after event"),
                ));
            }
            events.push(FaultEvent { t, node, kind });
        }
        let trace = FaultTrace::new(events);
        trace.check_overlaps()?;
        Ok(trace)
    }

    /// Render in the [`FaultTrace::parse`] text format. Node events keep
    /// the PR-3 bare-ordinal form; switch/link events use prefixed targets.
    pub fn emit(&self) -> String {
        let mut out = String::from("# time target kind\n");
        for e in &self.events {
            match e.kind {
                FaultKind::Fail | FaultKind::Recover | FaultKind::Drain => {
                    out.push_str(&format!("{} {} {}\n", e.t, e.node, e.kind));
                }
                FaultKind::SwitchDown | FaultKind::SwitchUp => {
                    out.push_str(&format!("{} switch:{} {}\n", e.t, e.node, e.kind));
                }
                FaultKind::LinkDegrade { permille } => {
                    out.push_str(&format!("{} link:{} degrade {}\n", e.t, e.node, permille));
                }
                FaultKind::LinkRestore => {
                    out.push_str(&format!("{} link:{} restore\n", e.t, e.node));
                }
            }
        }
        out
    }

    /// Generate a seeded MTBF/MTTR node-churn schedule over `[0, horizon)`.
    ///
    /// Each node alternates exponential up-times (mean `mtbf_secs`) and
    /// down-times (mean `mttr_secs`), sampled node-by-node in ordinal order
    /// from one ChaCha12 stream seeded with `seed` — fully deterministic.
    /// Every `Fail` that lands inside the horizon is paired with its
    /// `Recover` (which may land beyond the horizon, so a run that outlives
    /// the horizon still gets its nodes back).
    pub fn mtbf(
        num_nodes: usize,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, FaultTraceError> {
        let events = churn_events(
            num_nodes,
            mtbf_secs,
            mttr_secs,
            horizon,
            seed,
            |t, node, up| FaultEvent {
                t,
                node,
                kind: if up {
                    FaultKind::Recover
                } else {
                    FaultKind::Fail
                },
            },
        )?;
        Ok(FaultTrace::new(events))
    }

    /// Generate a seeded MTBF/MTTR *switch*-churn schedule over
    /// `[0, horizon)` — the correlated-failure generator: each
    /// `SwitchDown` takes the switch's entire subtree out of service when
    /// applied, so one draw fails many nodes at once.
    ///
    /// Same sampling discipline as [`FaultTrace::mtbf`], switch-by-switch
    /// over ordinals `0..num_switches`. Callers that must keep the root
    /// alive should filter its ordinal out of the result (draws are made
    /// for every switch first, so filtering does not shift other switches'
    /// sequences).
    pub fn switch_mtbf(
        num_switches: usize,
        mtbf_secs: f64,
        mttr_secs: f64,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, FaultTraceError> {
        let events = churn_events(
            num_switches,
            mtbf_secs,
            mttr_secs,
            horizon,
            seed,
            |t, node, up| FaultEvent {
                t,
                node,
                kind: if up {
                    FaultKind::SwitchUp
                } else {
                    FaultKind::SwitchDown
                },
            },
        )?;
        Ok(FaultTrace::new(events))
    }

    /// Generate a seeded link-degradation schedule over `[0, horizon)`:
    /// each directed link alternates exponential healthy periods (mean
    /// `mtbf_secs`) and degraded periods (mean `mttr_secs`) at
    /// `permille/1000` of nominal capacity.
    pub fn link_degrade(
        num_links: usize,
        mtbf_secs: f64,
        mttr_secs: f64,
        permille: u32,
        horizon: u64,
        seed: u64,
    ) -> Result<Self, FaultTraceError> {
        if !(1..=1000).contains(&permille) {
            return Err(FaultTraceError::semantic(format!(
                "link degrade permille must be 1..=1000, got {permille}"
            )));
        }
        let events = churn_events(
            num_links,
            mtbf_secs,
            mttr_secs,
            horizon,
            seed,
            |t, node, up| FaultEvent {
                t,
                node,
                kind: if up {
                    FaultKind::LinkRestore
                } else {
                    FaultKind::LinkDegrade { permille }
                },
            },
        )?;
        Ok(FaultTrace::new(events))
    }
}

/// Shared MTBF/MTTR alternation used by all three generators: per-target
/// exponential up/down sequences from one ChaCha12 stream. `mk(t, target,
/// up)` builds the domain-specific event (`up == false` for the outage
/// start, `true` for the repair).
fn churn_events(
    num_targets: usize,
    mtbf_secs: f64,
    mttr_secs: f64,
    horizon: u64,
    seed: u64,
    mk: impl Fn(u64, usize, bool) -> FaultEvent,
) -> Result<Vec<FaultEvent>, FaultTraceError> {
    if !(mtbf_secs.is_finite() && mtbf_secs > 0.0) {
        return Err(FaultTraceError::semantic(format!(
            "mtbf must be a positive finite number of seconds, got {mtbf_secs}"
        )));
    }
    if !(mttr_secs.is_finite() && mttr_secs > 0.0) {
        return Err(FaultTraceError::semantic(format!(
            "mttr must be a positive finite number of seconds, got {mttr_secs}"
        )));
    }
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    // Exponential draw: -mean * ln(1 - u), u uniform in [0, 1); at least
    // one second so virtual time always advances. Capped below 2^53 so the
    // f64 -> u64 conversion stays exact even for absurd means.
    let mut exp = |mean: f64| -> u64 {
        let u: f64 = rng.random();
        let secs = -mean * (1.0 - u).ln();
        u64_of_f64(secs.ceil().min(9.0e15)).max(1)
    };
    let mut events = Vec::new();
    for target in 0..num_targets {
        let mut t: u64 = 0;
        loop {
            t = t.saturating_add(exp(mtbf_secs));
            if t >= horizon {
                break;
            }
            events.push(mk(t, target, false));
            t = t.saturating_add(exp(mttr_secs));
            events.push(mk(t, target, true));
        }
    }
    Ok(events)
}
