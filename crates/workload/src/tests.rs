use crate::{swf, Job, JobId, JobLog, JobNature, LogSpec, MixSet, SystemModel};
use commsched_collectives::Pattern;

// ------------------------------------------------------------- generators

#[test]
fn generator_is_deterministic() {
    let a = LogSpec::new(SystemModel::theta(), 200, 7).generate();
    let b = LogSpec::new(SystemModel::theta(), 200, 7).generate();
    assert_eq!(a, b);
    let c = LogSpec::new(SystemModel::theta(), 200, 8).generate();
    assert_ne!(a, c);
}

#[test]
fn theta_marginals_match_paper() {
    let log = LogSpec::new(SystemModel::theta(), 1000, 42).generate();
    assert_eq!(log.jobs.len(), 1000);
    // §5.1: Theta max request 512, ~90% power-of-two jobs.
    assert!(log.max_nodes() <= 512);
    assert!(log.max_nodes() >= 256, "max {}", log.max_nodes());
    let p2 = log.pow2_fraction();
    assert!((0.85..=0.95).contains(&p2), "pow2 fraction {p2}");
    assert!(log.jobs.iter().all(|j| j.nodes >= 128));
}

#[test]
fn intrepid_and_mira_marginals() {
    let intrepid = LogSpec::new(SystemModel::intrepid(), 1000, 1).generate();
    assert!(intrepid.max_nodes() <= 40960);
    assert!(intrepid.pow2_fraction() >= 0.98);

    let mira = LogSpec::new(SystemModel::mira(), 1000, 1).generate();
    assert!(mira.max_nodes() <= 16384);
    assert!(mira.pow2_fraction() >= 0.98);
    assert!(mira.jobs.iter().all(|j| j.nodes >= 512));
}

#[test]
fn comm_percent_is_exact() {
    for pct in [30u8, 60, 90] {
        let log = LogSpec::new(SystemModel::theta(), 500, 3)
            .comm_percent(pct)
            .generate();
        let n_comm = log.jobs.iter().filter(|j| j.nature.is_comm()).count();
        assert_eq!(n_comm, 500 * pct as usize / 100);
    }
}

#[test]
fn submit_times_are_sorted_and_runtime_bounds_hold() {
    let log = LogSpec::new(SystemModel::mira(), 800, 9).generate();
    for w in log.jobs.windows(2) {
        assert!(w[0].submit <= w[1].submit);
    }
    for j in &log.jobs {
        assert!(j.runtime >= 60 && j.runtime <= 86_400);
        assert!(j.walltime >= j.runtime);
    }
}

#[test]
fn pattern_builder_sets_single_component() {
    let log = LogSpec::new(SystemModel::theta(), 100, 5)
        .pattern(Pattern::Binomial)
        .comm_fraction(0.7)
        .generate();
    for j in log.jobs.iter().filter(|j| j.nature.is_comm()) {
        assert_eq!(j.comm.len(), 1);
        assert_eq!(j.comm[0].0, Pattern::Binomial);
        assert!((j.comm[0].1 - 0.7).abs() < 1e-12);
    }
    for j in log.jobs.iter().filter(|j| !j.nature.is_comm()) {
        assert!(j.comm.is_empty());
        assert_eq!(j.comm_fraction(), 0.0);
    }
}

#[test]
fn mix_sets_match_section_6_2() {
    assert_eq!(MixSet::A.components(), vec![(Pattern::Rhvd, 0.33)]);
    assert_eq!(MixSet::B.components(), vec![(Pattern::Rhvd, 0.50)]);
    assert_eq!(MixSet::C.components(), vec![(Pattern::Rhvd, 0.70)]);
    assert_eq!(
        MixSet::D.components(),
        vec![(Pattern::Rd, 0.15), (Pattern::Binomial, 0.35)]
    );
    assert_eq!(
        MixSet::E.components(),
        vec![(Pattern::Rd, 0.21), (Pattern::Binomial, 0.49)]
    );
    assert!((MixSet::A.compute_fraction() - 0.67).abs() < 1e-12);
    assert!((MixSet::D.compute_fraction() - 0.50).abs() < 1e-12);
    assert!((MixSet::E.compute_fraction() - 0.30).abs() < 1e-12);
}

#[test]
fn mix_applies_to_comm_jobs() {
    let log = LogSpec::new(SystemModel::intrepid(), 300, 11)
        .comm_percent(90)
        .mix(MixSet::E)
        .generate();
    let comm_jobs: Vec<&Job> = log.jobs.iter().filter(|j| j.nature.is_comm()).collect();
    assert_eq!(comm_jobs.len(), 270);
    for j in comm_jobs {
        assert_eq!(j.comm.len(), 2);
        assert!((j.comm_fraction() - 0.70).abs() < 1e-12);
    }
}

#[test]
fn job_log_stats() {
    let jobs = vec![
        Job {
            id: JobId(2),
            submit: 10,
            runtime: 3600,
            walltime: 3600,
            nodes: 4,
            nature: JobNature::CommIntensive,
            comm: vec![(Pattern::Rd, 0.5)],
        },
        Job {
            id: JobId(1),
            submit: 5,
            runtime: 7200,
            walltime: 7200,
            nodes: 3,
            nature: JobNature::ComputeIntensive,
            comm: vec![],
        },
    ];
    let log = JobLog::new("test", jobs);
    assert_eq!(log.jobs[0].id, JobId(1)); // sorted by submit
    assert_eq!(log.max_nodes(), 4);
    assert_eq!(log.pow2_fraction(), 0.5);
    assert_eq!(log.comm_percent(), 50.0);
    assert!((log.total_node_hours() - (4.0 + 6.0)).abs() < 1e-12);
}

// ------------------------------------------------------------------- swf

const SWF_SAMPLE: &str = "\
; Version: 2.2
; Computer: Blue Gene/P
1 0 10 3600 4096 -1 -1 4096 7200 -1 1 1 1 -1 -1 -1 -1 -1
2 100 -1 1800 -1 -1 -1 2048 3600 -1 1 1 1 -1 -1 -1 -1 -1
3 200 5 -1 128 -1 -1 128 600 -1 1 1 1 -1 -1 -1 -1 -1
4 300 5 600 128 -1 -1 128 600 -1 5 1 1 -1 -1 -1 -1 -1
5 400 5 600 64 -1 -1 -1 300 -1 1 1 1 -1 -1 -1 -1 -1
";

#[test]
fn swf_parse_basics() {
    // Intrepid has 4 cores/node.
    let log = swf::parse(SWF_SAMPLE, "sample", 4).unwrap();
    // Job 3 (runtime -1) and job 4 (status 5 = cancelled) are skipped.
    assert_eq!(log.jobs.len(), 3);
    let j1 = &log.jobs[0];
    assert_eq!(j1.id, JobId(1));
    assert_eq!(j1.nodes, 1024); // 4096 procs / 4 per node
    assert_eq!(j1.runtime, 3600);
    assert_eq!(j1.walltime, 7200);
    // Job 5 had no requested procs; falls back to used procs (64/4 = 16).
    let j5 = &log.jobs[2];
    assert_eq!(j5.nodes, 16);
    // Requested time (300) below runtime (600) is clamped up.
    assert_eq!(j5.walltime, 600);
}

#[test]
fn swf_procs_round_up_to_nodes() {
    let text = "9 0 0 100 5 -1 -1 5 100 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
    let log = swf::parse(text, "x", 4).unwrap();
    assert_eq!(log.jobs[0].nodes, 2); // ceil(5/4)
}

#[test]
fn swf_rejects_malformed() {
    assert!(swf::parse("1 2 3\n", "x", 1).is_err());
    assert!(swf::parse("a b c d e f g h i j k l m n o p q r\n", "x", 1).is_err());
}

#[test]
fn swf_round_trip() {
    let orig = LogSpec::new(SystemModel::theta(), 50, 13).generate();
    let text = swf::emit(&orig);
    let back = swf::parse(&text, "rt", 1).unwrap();
    assert_eq!(back.jobs.len(), orig.jobs.len());
    for (a, b) in orig.jobs.iter().zip(back.jobs.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.submit, b.submit);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.walltime, b.walltime);
        assert_eq!(a.nodes, b.nodes);
    }
}

#[test]
fn swf_assign_natures() {
    let mut log = swf::parse(SWF_SAMPLE, "sample", 4).unwrap();
    swf::assign_natures(&mut log, 67, &[(Pattern::Rd, 0.5)], 99);
    let n_comm = log.jobs.iter().filter(|j| j.nature.is_comm()).count();
    assert_eq!(n_comm, 3 * 67 / 100);
    // Re-assignment resets previous labels.
    swf::assign_natures(&mut log, 0, &[(Pattern::Rd, 0.5)], 99);
    assert!(log
        .jobs
        .iter()
        .all(|j| !j.nature.is_comm() && j.comm.is_empty()));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every generated job respects the system's request band and the
        /// comm-percent accounting is exact for any percentage.
        #[test]
        fn generated_jobs_in_band(seed in any::<u64>(), pct in 0u8..=100) {
            for sys in SystemModel::paper_systems() {
                let log = LogSpec::new(sys, 120, seed).comm_percent(pct).generate();
                prop_assert_eq!(log.jobs.len(), 120);
                for j in &log.jobs {
                    prop_assert!(j.nodes >= sys.min_request && j.nodes <= sys.max_request);
                    prop_assert!(j.nodes <= sys.total_nodes);
                }
                let n_comm = log.jobs.iter().filter(|j| j.nature.is_comm()).count();
                prop_assert_eq!(n_comm, 120 * pct as usize / 100);
            }
        }

        /// SWF emit/parse round-trips any synthetic log.
        #[test]
        fn swf_round_trip_any(seed in any::<u64>()) {
            let orig = LogSpec::new(SystemModel::intrepid(), 40, seed).generate();
            let back = swf::parse(&swf::emit(&orig), "rt", 1).unwrap();
            prop_assert_eq!(back.jobs.len(), orig.jobs.len());
            for (a, b) in orig.jobs.iter().zip(back.jobs.iter()) {
                prop_assert_eq!(a.nodes, b.nodes);
                prop_assert_eq!(a.runtime, b.runtime);
            }
        }
    }
}

// ------------------------------------------------------------------ stats

mod stats_tests {
    use super::*;
    use crate::LogProfile;

    #[test]
    fn profile_of_synthetic_log() {
        let log = LogSpec::new(SystemModel::theta(), 500, 21)
            .comm_percent(60)
            .generate();
        let p = LogProfile::new(&log, SystemModel::theta().total_nodes);
        assert_eq!(p.jobs, 500);
        assert!(p.nodes_min >= 128 && p.nodes_max <= 512);
        assert!((p.comm_percent - 60.0).abs() < 1.0);
        assert!(p.runtime_min >= 60 && p.runtime_max <= 86_400);
        assert!(p.offered_load > 0.0);
        assert!(p.span > 0);
        // Histogram covers every job exactly once.
        let total: usize = p.size_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 500);
        // Rendering mentions the key facts.
        let text = p.render();
        assert!(text.contains("500 jobs"));
        assert!(text.contains("communication-intensive"));
    }

    #[test]
    fn profile_of_empty_log() {
        let log = JobLog::new("empty", vec![]);
        let p = LogProfile::new(&log, 100);
        assert_eq!(p.jobs, 0);
        assert_eq!(p.span, 0);
        assert_eq!(p.offered_load, 0.0);
        assert!(p.size_histogram.is_empty());
    }

    #[test]
    fn offered_load_reflects_saturation() {
        // Same jobs, half the machine: load doubles.
        let log = LogSpec::new(SystemModel::theta(), 300, 5).generate();
        let full = LogProfile::new(&log, 4392).offered_load;
        let half = LogProfile::new(&log, 2196).offered_load;
        assert!((half / full - 2.0).abs() < 1e-9);
    }
}

#[test]
fn diurnal_arrivals_cluster_in_daytime() {
    let sys = SystemModel::theta();
    let flat = LogSpec::new(sys, 2000, 17).generate();
    let cyc = LogSpec::new(sys, 2000, 17).diurnal(true).generate();
    let day_fraction = |log: &JobLog| {
        let day = log
            .jobs
            .iter()
            .filter(|j| (8..20).contains(&((j.submit / 3600) % 24)))
            .count();
        day as f64 / log.jobs.len() as f64
    };
    let f_flat = day_fraction(&flat);
    let f_cyc = day_fraction(&cyc);
    // Half the hours are "day"; the cycle must pull well more than the
    // flat log's share into them.
    assert!(
        f_cyc > f_flat + 0.1,
        "flat {f_flat:.2} vs diurnal {f_cyc:.2}"
    );
    // Still sorted and deterministic.
    let again = LogSpec::new(sys, 2000, 17).diurnal(true).generate();
    assert_eq!(cyc, again);
}

#[test]
fn window_and_normalize() {
    let log = LogSpec::new(SystemModel::theta(), 200, 4).generate();
    let mid = log.jobs[100].submit;
    let end = log.jobs[150].submit;
    let mut w = log.window(mid, end);
    assert!(!w.jobs.is_empty());
    assert!(w.jobs.iter().all(|j| j.submit >= mid && j.submit < end));
    w.normalize_submit();
    assert_eq!(w.jobs[0].submit, 0);
    for pair in w.jobs.windows(2) {
        assert!(pair[0].submit <= pair[1].submit);
    }
    // Empty window behaves.
    let mut e = log.window(0, 0);
    assert!(e.jobs.is_empty());
    e.normalize_submit();
}

// ------------------------------------------------------------ fault traces

mod fault_traces {
    use crate::fault::{FaultEvent, FaultKind, FaultTrace};

    #[test]
    fn parse_emit_round_trip() {
        let text = "\
# a comment
10 3 fail

20 3 recover   # trailing comment
15 0 drain
";
        let trace = FaultTrace::parse(text).unwrap();
        assert_eq!(trace.len(), 3);
        // Canonical order: by (t, node, kind).
        assert_eq!(
            trace.events()[0],
            FaultEvent {
                t: 10,
                node: 3,
                kind: FaultKind::Fail
            }
        );
        assert_eq!(trace.events()[1].t, 15);
        let reparsed = FaultTrace::parse(&trace.emit()).unwrap();
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn parse_errors_carry_line_and_field() {
        let err = FaultTrace::parse("10 3 fail\nnope 0 fail").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert_eq!(err.field, Some("time"));

        let err = FaultTrace::parse("10 x fail").unwrap_err();
        assert_eq!(err.field, Some("target"));

        let err = FaultTrace::parse("10 3 explode").unwrap_err();
        assert_eq!(err.field, Some("kind"));
        assert!(err.to_string().contains("line 1"));

        let err = FaultTrace::parse("10 3").unwrap_err();
        assert_eq!(err.field, Some("kind"));

        let err = FaultTrace::parse("10 3 fail extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn validate_rejects_out_of_range_nodes() {
        let trace = FaultTrace::parse("5 7 fail").unwrap();
        assert!(trace.validate(8).is_ok());
        let err = trace.validate(7).unwrap_err();
        assert!(err.message.contains("node 7"));
    }

    #[test]
    fn mtbf_generator_is_deterministic_and_well_formed() {
        let a = FaultTrace::mtbf(16, 5_000.0, 600.0, 50_000, 42).unwrap();
        let b = FaultTrace::mtbf(16, 5_000.0, 600.0, 50_000, 42).unwrap();
        assert_eq!(a, b);
        let c = FaultTrace::mtbf(16, 5_000.0, 600.0, 50_000, 43).unwrap();
        assert_ne!(a, c);
        assert!(!a.is_empty(), "a 10x-horizon MTBF should produce churn");

        // Sorted canonically, every fail inside the horizon, and per node
        // the events alternate fail/recover starting with fail.
        let events = a.events();
        for w in events.windows(2) {
            assert!((w[0].t, w[0].node, w[0].kind) <= (w[1].t, w[1].node, w[1].kind));
        }
        for node in 0..16 {
            let mine: Vec<_> = events.iter().filter(|e| e.node == node).collect();
            for (i, e) in mine.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    FaultKind::Fail
                } else {
                    FaultKind::Recover
                };
                assert_eq!(e.kind, expect, "node {node} event {i}");
            }
            for e in &mine {
                if e.kind == FaultKind::Fail {
                    assert!(e.t < 50_000);
                }
            }
        }
    }

    #[test]
    fn mtbf_rejects_degenerate_parameters() {
        assert!(FaultTrace::mtbf(4, 0.0, 600.0, 1000, 1).is_err());
        assert!(FaultTrace::mtbf(4, -5.0, 600.0, 1000, 1).is_err());
        assert!(FaultTrace::mtbf(4, f64::NAN, 600.0, 1000, 1).is_err());
        assert!(FaultTrace::mtbf(4, 5000.0, f64::INFINITY, 1000, 1).is_err());
        // Zero nodes or zero horizon is legal and empty.
        assert!(FaultTrace::mtbf(0, 5000.0, 600.0, 1000, 1)
            .unwrap()
            .is_empty());
        assert!(FaultTrace::mtbf(4, 5000.0, 600.0, 0, 1).unwrap().is_empty());
    }

    #[test]
    fn parse_switch_and_link_domains_round_trip() {
        use crate::fault::FaultDomain;
        let text = "\
100 switch:2 down
200 link:5 degrade 250
300 link:5 restore
400 switch:2 up
500 7 fail
";
        let trace = FaultTrace::parse(text).unwrap();
        assert_eq!(trace.len(), 5);
        assert!(trace.has_domain(FaultDomain::Node));
        assert!(trace.has_domain(FaultDomain::Switch));
        assert!(trace.has_domain(FaultDomain::Link));
        assert_eq!(
            trace.events()[1].kind,
            FaultKind::LinkDegrade { permille: 250 }
        );
        assert_eq!(trace.events()[0].kind, FaultKind::SwitchDown);
        let reparsed = FaultTrace::parse(&trace.emit()).unwrap();
        assert_eq!(trace, reparsed);
        // Node events still emit in the PR-3 bare-ordinal format.
        assert!(trace.emit().contains("500 7 fail"));
    }

    #[test]
    fn parse_rejects_bad_domain_lines() {
        // Wrong kind for the domain.
        assert!(FaultTrace::parse("10 switch:0 fail").is_err());
        assert!(FaultTrace::parse("10 link:0 down").is_err());
        assert!(FaultTrace::parse("10 node:0 degrade 500").is_err());
        // Degrade needs an in-range permille argument.
        assert!(FaultTrace::parse("10 link:0 degrade").is_err());
        assert!(FaultTrace::parse("10 link:0 degrade 0").is_err());
        assert!(FaultTrace::parse("10 link:0 degrade 1001").is_err());
        assert!(FaultTrace::parse("10 link:0 degrade 500 junk").is_err());
        // Unknown prefix.
        assert!(FaultTrace::parse("10 rack:0 fail").is_err());
    }

    #[test]
    fn parse_rejects_overlapping_down_intervals() {
        use crate::fault::FaultTraceErrorKind;
        // A second `fail` while node 3 is still down is a typed overlap.
        let err = FaultTrace::parse("10 3 fail\n20 3 fail").unwrap_err();
        assert_eq!(err.kind, FaultTraceErrorKind::Overlap);
        assert!(err.to_string().contains("already down"));
        // Same for switches.
        let err = FaultTrace::parse("10 switch:1 down\n20 switch:1 down").unwrap_err();
        assert_eq!(err.kind, FaultTraceErrorKind::Overlap);
        // Down → up → down again is fine.
        assert!(FaultTrace::parse("10 3 fail\n20 3 recover\n30 3 fail").is_ok());
        assert!(FaultTrace::parse("10 switch:1 down\n20 switch:1 up\n30 switch:1 down").is_ok());
        // Different targets (or domains) never overlap each other: node 1
        // and switch 1 are distinct streams.
        assert!(FaultTrace::parse("10 1 fail\n20 switch:1 down").is_ok());
        // Drains and link events are not down intervals.
        assert!(FaultTrace::parse("10 3 drain\n20 3 drain").is_ok());
        assert!(FaultTrace::parse("10 link:0 degrade 500\n20 link:0 degrade 250").is_ok());
    }

    #[test]
    fn validate_machine_checks_every_domain() {
        let trace =
            FaultTrace::parse("10 7 fail\n20 switch:4 down\n30 link:63 degrade 500").unwrap();
        assert!(trace.validate_machine(8, 5, 64).is_ok());
        assert!(trace.validate_machine(7, 5, 64).is_err());
        assert!(trace.validate_machine(8, 4, 64).is_err());
        assert!(trace.validate_machine(8, 5, 63).is_err());
        // The node-only validator still ignores the other domains.
        assert!(trace.validate(8).is_ok());
    }

    #[test]
    fn switch_and_link_generators_are_deterministic_and_valid() {
        use crate::fault::FaultDomain;
        let a = FaultTrace::switch_mtbf(6, 40_000.0, 5_000.0, 2_000_000, 9).unwrap();
        let b = FaultTrace::switch_mtbf(6, 40_000.0, 5_000.0, 2_000_000, 9).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "horizon long enough to draw outages");
        assert!(a.events().iter().all(|e| e.domain() == FaultDomain::Switch));
        // Generated schedules never overlap, so they re-parse cleanly.
        assert!(FaultTrace::parse(&a.emit()).is_ok());

        let l = FaultTrace::link_degrade(16, 40_000.0, 5_000.0, 250, 2_000_000, 9).unwrap();
        let l2 = FaultTrace::link_degrade(16, 40_000.0, 5_000.0, 250, 2_000_000, 9).unwrap();
        assert_eq!(l, l2);
        assert!(!l.is_empty());
        assert!(l.events().iter().all(|e| e.domain() == FaultDomain::Link));
        assert!(l.events().iter().all(|e| matches!(
            e.kind,
            FaultKind::LinkDegrade { permille: 250 } | FaultKind::LinkRestore
        )));
        assert!(FaultTrace::link_degrade(16, 40_000.0, 5_000.0, 0, 2_000_000, 9).is_err());

        // Merging disjoint domains keeps every event and stays canonical.
        let merged = a.clone().merge(l.clone());
        assert_eq!(merged.len(), a.len() + l.len());
        assert!(FaultTrace::parse(&merged.emit()).is_ok());
    }
}

// --------------------------------------------------------------- swf fuzz

mod swf_fuzz {
    use super::swf;

    #[test]
    fn error_names_the_offending_field() {
        // 18 fields with a bad run_time (index 3).
        let line = "1 0 0 oops 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let err = swf::parse(line, "t", 1).unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.field, Some("run_time"));
        assert!(err.to_string().contains("field 'run_time'"));

        // Bad submit time (index 1).
        let line = "1 ? 0 10 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let err = swf::parse(line, "t", 1).unwrap_err();
        assert_eq!(err.field, Some("submit_time"));
    }

    #[test]
    fn truncated_and_garbage_lines_error_not_panic() {
        let cases: &[&str] = &[
            "1 2 3",                                         // truncated
            "only one",                                      // way short
            "\u{0} \u{1} \u{2}",                             // control garbage
            "1 0 0 10 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1", // 17 fields
            "NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN NaN",
            "9999999999999999999999999999 0 0 10 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1 -1",
        ];
        for case in cases {
            let res = swf::parse(case, "fuzz", 4);
            assert!(res.is_err(), "{case:?} should fail to parse");
        }
        // Comments, blank lines, and an empty document are fine.
        assert!(swf::parse("; header only\n\n", "ok", 4)
            .unwrap()
            .jobs
            .is_empty());
        // procs_per_node of zero is a typed error, not a panic.
        assert!(swf::parse("", "ok", 0).is_err());
    }

    #[test]
    fn fuzz_random_byte_lines_never_panic() {
        // Cheap deterministic fuzz: pseudo-random ASCII lines must either
        // parse or produce a typed SwfError, never panic.
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            let mut line = String::new();
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (x >> 33) as u8;
                line.push((b % 94 + 32) as char); // printable ASCII
            }
            let _ = swf::parse(&line, "fuzz", 4);
        }
    }
}
