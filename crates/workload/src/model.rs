//! Job, log and system-model types.

use commsched_collectives::Pattern;
use commsched_core::{JobId, JobNature};
use serde::{Deserialize, Serialize};

/// One job, as the scheduler sees it at submission.
///
/// Times are integral seconds of virtual time, like SLURM accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable id (SWF job number or generator index).
    pub id: JobId,
    /// Submission time, seconds from log start.
    pub submit: u64,
    /// Recorded execution time from the log — the job's duration when it
    /// runs under the conditions the log was captured under (the paper's
    /// emulation replays exactly this under the *default* allocator).
    pub runtime: u64,
    /// Requested wall-clock limit (>= runtime); used by backfilling.
    pub walltime: u64,
    /// Whole nodes requested.
    pub nodes: usize,
    /// Communication- or compute-intensive (assigned per §5.1).
    pub nature: JobNature,
    /// Communication components: `(pattern, fraction of runtime)` pairs.
    /// Empty for compute-intensive jobs; fractions sum to at most 1, the
    /// remainder being compute time. Experiment set D, for example, gives
    /// every communication-intensive job `[(RD, 0.15), (Binomial, 0.35)]`.
    pub comm: Vec<(Pattern, f64)>,
}

impl Job {
    /// Fraction of runtime spent communicating (0 for compute jobs).
    pub fn comm_fraction(&self) -> f64 {
        self.comm.iter().map(|(_, f)| f).sum()
    }

    /// Node-seconds consumed when the job runs for `runtime` seconds.
    pub fn node_seconds(&self) -> u64 {
        self.runtime * self.nodes as u64
    }
}

/// A job log: an ordered sequence of jobs over one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    /// Human-readable provenance ("theta-synthetic-seed42", file name, ...).
    pub name: String,
    /// Jobs sorted by submission time.
    pub jobs: Vec<Job>,
}

impl JobLog {
    /// Construct, sorting jobs by `(submit, id)`.
    pub fn new(name: impl Into<String>, mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.submit, j.id));
        JobLog {
            name: name.into(),
            jobs,
        }
    }

    /// Largest node request in the log.
    pub fn max_nodes(&self) -> usize {
        self.jobs.iter().map(|j| j.nodes).max().unwrap_or(0)
    }

    /// Fraction of jobs with power-of-two node requests.
    pub fn pow2_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let n = self
            .jobs
            .iter()
            .filter(|j| j.nodes.is_power_of_two())
            .count();
        n as f64 / self.jobs.len() as f64
    }

    /// Fraction of communication-intensive jobs.
    pub fn comm_percent(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let n = self.jobs.iter().filter(|j| j.nature.is_comm()).count();
        100.0 * n as f64 / self.jobs.len() as f64
    }

    /// Total node-hours of recorded runtimes.
    pub fn total_node_hours(&self) -> f64 {
        self.jobs.iter().map(|j| j.node_seconds()).sum::<u64>() as f64 / 3600.0
    }

    /// The sub-log of jobs submitted in `[start, end)` seconds.
    pub fn window(&self, start: u64, end: u64) -> JobLog {
        JobLog {
            name: format!("{}[{start}..{end})", self.name),
            jobs: self
                .jobs
                .iter()
                .filter(|j| (start..end).contains(&j.submit))
                .cloned()
                .collect(),
        }
    }

    /// Shift submit times so the first job arrives at t = 0 (useful after
    /// [`JobLog::window`], and for PWA logs whose clock starts mid-epoch).
    pub fn normalize_submit(&mut self) {
        let t0 = self.jobs.first().map(|j| j.submit).unwrap_or(0);
        for j in &mut self.jobs {
            j.submit -= t0;
        }
    }
}

/// Statistical model of one of the paper's systems, driving the synthetic
/// generator. The constants reproduce the marginals stated in §5.1 plus
/// load levels that land the three logs in the paper's qualitatively
/// different queueing regimes (Intrepid lightly loaded, Theta saturated,
/// Mira in between — visible in Table 3's wait-time columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// System name ("intrepid", "theta", "mira").
    pub name: &'static str,
    /// Compute nodes in the machine.
    pub total_nodes: usize,
    /// Smallest schedulable request (Blue Gene partition minimum etc.).
    pub min_request: usize,
    /// Largest request observed in the paper's log slice.
    pub max_request: usize,
    /// Fraction of jobs with power-of-two requests.
    pub pow2_fraction: f64,
    /// Mean of the exponential interarrival time, seconds.
    pub mean_interarrival: f64,
    /// Median runtime, seconds (lognormal body).
    pub runtime_median: f64,
    /// Lognormal sigma of runtimes.
    pub runtime_sigma: f64,
    /// Requested walltime = runtime * this slack, on average.
    pub walltime_slack: f64,
}

impl SystemModel {
    /// Intrepid: Blue Gene/P, 40k nodes; max request 40960; >=99% power of
    /// two; light queueing (Table 3 row 1 shows tiny wait times).
    pub fn intrepid() -> Self {
        SystemModel {
            name: "intrepid",
            total_nodes: 40960,
            min_request: 256,
            max_request: 40960,
            pow2_fraction: 0.995,
            mean_interarrival: 700.0,
            runtime_median: 3600.0,
            runtime_sigma: 1.0,
            walltime_slack: 1.8,
        }
    }

    /// Theta: 4392 nodes; max request 512; 90% power of two; saturated
    /// queue (Table 3 row 2 shows waits dwarfing execution).
    pub fn theta() -> Self {
        SystemModel {
            name: "theta",
            total_nodes: 4392,
            min_request: 128,
            max_request: 512,
            pow2_fraction: 0.90,
            mean_interarrival: 420.0,
            runtime_median: 7200.0,
            runtime_sigma: 1.1,
            walltime_slack: 1.6,
        }
    }

    /// Mira: Blue Gene/Q, 48k nodes; max request 16384; >=99% power of
    /// two; moderate queueing.
    pub fn mira() -> Self {
        SystemModel {
            name: "mira",
            total_nodes: 49152,
            min_request: 512,
            max_request: 16384,
            pow2_fraction: 0.995,
            mean_interarrival: 480.0,
            runtime_median: 7200.0,
            runtime_sigma: 1.0,
            walltime_slack: 1.7,
        }
    }

    /// All three evaluation systems in the paper's row order.
    pub fn paper_systems() -> [SystemModel; 3] {
        [Self::intrepid(), Self::theta(), Self::mira()]
    }
}
