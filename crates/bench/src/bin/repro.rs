//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--jobs N] [--seed S] [--out DIR] [--quick]
//!
//! EXPERIMENT: fig1 corr table2 table3 fig6 table4 fig7 fig8 fig9 ablation mapping seeds faults | all
//! --jobs N    jobs per synthetic log (default 1000, the paper's size)
//! --seed S    base RNG seed (default 42)
//! --out DIR   write <name>.txt and <name>.json under DIR (default results/)
//! --quick     shorthand for --jobs 150
//! ```
//!
//! Build with `--release`; the full Table 3 grid runs 24 thousand-job
//! simulations (a few minutes on a laptop, parallelized with rayon).

use commsched_bench::{experiments, Scale};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = Scale::paper();
    let mut out_dir = PathBuf::from("results");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => scale.jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale.seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return usage("--out needs a directory"),
            },
            "--quick" => scale.jobs = Scale::quick().jobs,
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
    }

    let registry = experiments::all();
    let run_all = names.is_empty() || names.iter().any(|n| n == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|(name, _)| run_all || names.iter().any(|n| n == name))
        .collect();
    if selected.is_empty() {
        return usage(&format!("no experiment matches {names:?}"));
    }
    for name in &names {
        if name != "all" && !registry.iter().any(|(n, _)| n == name) {
            return usage(&format!("unknown experiment {name:?}"));
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for (name, run) in selected {
        eprintln!(
            "==> running {name} (jobs={}, seed={})",
            scale.jobs, scale.seed
        );
        let t0 = std::time::Instant::now();
        let result = run(scale);
        let dt = t0.elapsed();
        println!("\n{}", result.text);
        let txt = out_dir.join(format!("{name}.txt"));
        let json = out_dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&txt, &result.text) {
            eprintln!("cannot write {}: {e}", txt.display());
            return ExitCode::FAILURE;
        }
        let mut f = match std::fs::File::create(&json) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot write {}: {e}", json.display());
                return ExitCode::FAILURE;
            }
        };
        if serde_json::to_writer_pretty(&mut f, &result.json).is_err() || writeln!(f).is_err() {
            eprintln!("cannot serialize {name}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "<== {name} done in {dt:.1?}; wrote {} and {}",
            txt.display(),
            json.display()
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--jobs N] [--seed S] [--out DIR] [--quick]\n\
         experiments: fig1 corr table2 table3 fig6 table4 fig7 fig8 fig9 ablation mapping seeds faults (default: all)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
