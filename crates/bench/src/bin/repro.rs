//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--jobs N] [--seed S] [--out DIR] [--quick]
//!       [--threads N] [--report-out FILE]
//!
//! EXPERIMENT: fig1 corr table2 table3 fig6 table4 fig7 fig8 fig9 ablation mapping seeds faults trace tournament | all
//! --jobs N    jobs per synthetic log (default 1000, the paper's size)
//! --seed S    base RNG seed (default 42)
//! --out DIR   write <name>.txt and <name>.json under DIR (default results/)
//! --quick     shorthand for --jobs 150
//! --threads N worker threads for the sweeps (default: RAYON_NUM_THREADS,
//!             then the host's CPU count; never changes output bytes)
//! --report-out FILE  write a machine-readable RunReport of the repro run
//!                    itself (experiments run, output sizes) — derived only
//!                    from experiment outputs, so it is seed-deterministic
//! ```
//!
//! Build with `--release`; the full Table 3 grid runs 24 thousand-job
//! simulations (a few minutes on a laptop, parallelized with rayon).

use commsched_bench::{experiments, Scale};
use commsched_metrics::Registry;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut scale = Scale::paper();
    let mut out_dir = PathBuf::from("results");
    let mut report_out: Option<PathBuf> = None;
    let mut threads: usize = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => scale.jobs = n,
                _ => return usage("--jobs needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale.seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return usage("--out needs a directory"),
            },
            "--quick" => scale.jobs = Scale::quick().jobs,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--report-out" => match args.next() {
                Some(f) => report_out = Some(PathBuf::from(f)),
                None => return usage("--report-out needs a file"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
    }

    let registry = experiments::all();
    let run_all = names.is_empty() || names.iter().any(|n| n == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|(name, _)| run_all || names.iter().any(|n| n == name))
        .collect();
    if selected.is_empty() {
        return usage(&format!("no experiment matches {names:?}"));
    }
    for name in &names {
        if name != "all" && !registry.iter().any(|(n, _)| n == name) {
            return usage(&format!("unknown experiment {name:?}"));
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    // `--threads 0` (unset) builds a pool at the ambient default, so
    // installing it is behavior-preserving; thread count affects
    // wall-clock only, never output bytes.
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot build thread pool: {e}");
            return ExitCode::FAILURE;
        }
    };

    // RunReport of the repro run itself: everything observed here derives
    // from experiment outputs (never wall-clock), so the report is a
    // deterministic function of (experiments, jobs, seed).
    let mut reg = Registry::new();
    let c_runs = reg.counter("experiments.run");
    let h_txt = reg.hist("experiment.text_bytes");
    let h_json = reg.hist("experiment.json_bytes");
    let g_jobs = reg.gauge("scale.jobs");
    let g_seed = reg.gauge("scale.seed");
    reg.set(g_jobs, scale.jobs as f64);
    reg.set(g_seed, scale.seed as f64);

    for (name, run) in selected {
        eprintln!(
            "==> running {name} (jobs={}, seed={})",
            scale.jobs, scale.seed
        );
        let t0 = std::time::Instant::now();
        let result = pool.install(|| run(scale));
        let dt = t0.elapsed();
        println!("\n{}", result.text);
        let txt = out_dir.join(format!("{name}.txt"));
        let json = out_dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&txt, &result.text) {
            eprintln!("cannot write {}: {e}", txt.display());
            return ExitCode::FAILURE;
        }
        let mut f = match std::fs::File::create(&json) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot write {}: {e}", json.display());
                return ExitCode::FAILURE;
            }
        };
        if serde_json::to_writer_pretty(&mut f, &result.json).is_err() || writeln!(f).is_err() {
            eprintln!("cannot serialize {name}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "<== {name} done in {dt:.1?}; wrote {} and {}",
            txt.display(),
            json.display()
        );
        reg.inc(c_runs, 1);
        reg.observe(h_txt, result.text.len() as f64);
        let json_len = serde_json::to_string(&result.json).map_or(0, |s| s.len());
        reg.observe(h_json, json_len as f64);
    }

    if let Some(path) = report_out {
        if let Err(e) = std::fs::write(&path, reg.snapshot().to_json_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote run report to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--jobs N] [--seed S] [--out DIR] [--quick] [--threads N] [--report-out FILE]\n\
         experiments: fig1 corr table2 table3 fig6 table4 fig7 fig8 fig9 ablation mapping seeds faults trace tournament (default: all)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
