//! Measure fast-vs-naive placement evaluation and write `BENCH_engine.json`.
//!
//! The seed revision cannot be rebuilt in this offline environment, so the
//! baseline is the *retained* naive pipeline (clone-based what-if states +
//! four `job_cost` traversals per component — see
//! [`commsched_bench::perf`]) measured in the same binary as the fused
//! [`commsched_core::PlacementEvaluator`] path. Medians of `ITERS` single
//! placements at Theta and Mira scale, in nanoseconds.
//!
//! ```text
//! cargo run --release -p commsched-bench --bin bench_engine [out.json]
//! cargo run --release -p commsched-bench --bin bench_engine -- --check BENCH_engine.json
//! ```
//!
//! `--check` re-measures the fast path and fails (exit 1) if any case
//! regresses more than 2x against the baseline's medians.

use commsched_bench::baseline;
use commsched_bench::perf::PlacementCase;
use commsched_core::PlacementEvaluator;
use commsched_topology::SystemPreset;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const ITERS: usize = 31;

fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Measure both paths on every case; returns `(label, fast_ns, naive_ns,
/// nodes, want)` rows.
fn measure() -> Vec<(String, f64, f64, usize, usize)> {
    [
        ("theta_256", SystemPreset::Theta, 256usize),
        ("mira_2048", SystemPreset::Mira, 2048usize),
    ]
    .into_iter()
    .map(|(label, preset, want)| {
        let case = PlacementCase::new(preset, want);
        let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));

        // The two paths must agree exactly before timing means anything.
        let naive = case.place_naive();
        let fast = case.place_fast(&eval);
        assert_eq!(
            naive.cost_actual.to_bits(),
            fast.cost_actual.to_bits(),
            "{label}: fast path diverged from naive"
        );
        assert_eq!(naive.cost_default.to_bits(), fast.cost_default.to_bits());
        assert_eq!(naive.adjusted.to_bits(), fast.adjusted.to_bits());

        let naive_ns = median_ns(ITERS, || {
            std::hint::black_box(case.place_naive());
        });
        let fast_ns = median_ns(ITERS, || {
            std::hint::black_box(case.place_fast(&eval));
        });
        (
            label.to_string(),
            fast_ns,
            naive_ns,
            case.tree.num_nodes(),
            want,
        )
    })
    .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: bench_engine --check <baseline.json>");
            std::process::exit(2);
        };
        let live: Vec<(String, f64)> = measure()
            .into_iter()
            .map(|(label, fast_ns, _, _, _)| (label, fast_ns))
            .collect();
        baseline::check_or_exit(path, &live);
    }

    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut entries = Vec::new();

    for (label, fast_ns, naive_ns, nodes, want) in measure() {
        let speedup = naive_ns / fast_ns;
        eprintln!(
            "{label}: naive {:.1} µs, fast {:.1} µs, speedup {speedup:.1}x",
            naive_ns / 1e3,
            fast_ns / 1e3
        );
        entries.push(format!(
            "    {{\n      \"case\": \"{label}\",\n      \"nodes\": {nodes},\n      \"request\": {want},\n      \"naive_median_ns\": {naive_ns:.0},\n      \"fast_median_ns\": {fast_ns:.0},\n      \"speedup\": {speedup:.2}\n    }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"single placement evaluation (adaptive select + Eq.6/Eq.7), fast vs retained-naive\",\n  \"iters\": {ITERS},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
