//! Measure fast-vs-naive placement evaluation and write `BENCH_engine.json`.
//!
//! The seed revision cannot be rebuilt in this offline environment, so the
//! baseline is the *retained* naive pipeline measured in the same binary,
//! in two tiers:
//!
//! * **placement** rows (`theta_256` … `dragonfly_1m`): clone-based
//!   what-if states + four `job_cost` traversals per component (see
//!   [`commsched_bench::perf`]) vs the fused
//!   [`commsched_core::PlacementEvaluator`] path;
//! * **selection** rows (`select_*`): the retained linear-scan selectors
//!   (`commsched_core::select_scan`, O(cluster size) per placement) vs the
//!   production free-count-index descent, on the exascale presets up to
//!   the 1,048,576-node dragonfly.
//!
//! Medians of `ITERS` single placements, in nanoseconds.
//!
//! ```text
//! cargo run --release -p commsched-bench --bin bench_engine [out.json]
//! cargo run --release -p commsched-bench --bin bench_engine -- --check BENCH_engine.json
//! ```
//!
//! `--check` re-measures the fast paths and fails (exit 1) if any case
//! regresses more than 2x against the baseline's medians. Both modes also
//! enforce the exascale gate: indexed selection on the 1M-node preset must
//! beat the linear scan by at least [`GATE_MIN_SPEEDUP`]x — a
//! machine-independent ratio, measured live.

use commsched_bench::baseline;
use commsched_bench::perf::PlacementCase;
use commsched_core::PlacementEvaluator;
use commsched_topology::SystemPreset;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const ITERS: usize = 31;

/// The exascale selection case and the scan-vs-index speedup it must hold.
const GATE_CASE: &str = "select_dragonfly_1m";
const GATE_MIN_SPEEDUP: f64 = 5.0;

/// The annealed-search throughput case (`sa_theta_256`): evaluator budget
/// per search, and the proposal-evaluation rate the scratch what-if path
/// must sustain on the Theta preset. Like the exascale gate, the floor is
/// checked live in both modes — throughput this far above the bar is a
/// structural property (no clones, memo re-stamped per proposal), not a
/// machine constant.
const SA_BUDGET: u32 = 512;
const SA_MIN_EVALS_PER_SEC: f64 = 100_000.0;

fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One measured row: a fast path against its retained-naive baseline.
struct Row {
    label: String,
    /// `"placement"` (evaluator fast-vs-naive) or `"selection"`
    /// (index-vs-scan).
    kind: &'static str,
    nodes: usize,
    want: usize,
    naive_ns: f64,
    fast_ns: f64,
}

/// Request size for the pure-selection rows: a typical job from the
/// paper's workloads. Selection output is proportional to the request, so
/// a moderate size keeps the measurement on the search-and-order work the
/// index replaces rather than on materializing the placement — which is
/// identical on both paths.
const SELECT_WANT: usize = 256;

/// Measure both paths on every case. Placement (fast evaluator vs naive
/// clone-based pipeline) runs where the naive path is affordable; pure
/// selection (indexed vs linear scan) runs everywhere, including the
/// 500k/1M presets where the scan is the dominant cost being replaced.
fn measure() -> Vec<Row> {
    let cases = [
        ("theta_256", SystemPreset::Theta, 256usize, true),
        ("mira_2048", SystemPreset::Mira, 2048usize, true),
        (
            "multirail_500k",
            SystemPreset::Multirail500k,
            4096usize,
            false,
        ),
        ("dragonfly_1m", SystemPreset::Dragonfly1M, 4096usize, true),
    ];
    let mut rows = Vec::new();
    for (label, preset, want, placement) in cases {
        let case = PlacementCase::new(preset, want);
        let nodes = case.tree.num_nodes();

        if placement {
            let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));
            // The two paths must agree exactly before timing means anything.
            let naive = case.place_naive();
            let fast = case.place_fast(&eval);
            assert_eq!(
                naive.cost_actual.to_bits(),
                fast.cost_actual.to_bits(),
                "{label}: fast path diverged from naive"
            );
            assert_eq!(naive.cost_default.to_bits(), fast.cost_default.to_bits());
            assert_eq!(naive.adjusted.to_bits(), fast.adjusted.to_bits());

            let naive_ns = median_ns(ITERS, || {
                std::hint::black_box(case.place_naive());
            });
            let fast_ns = median_ns(ITERS, || {
                std::hint::black_box(case.place_fast(&eval));
            });
            rows.push(Row {
                label: label.to_string(),
                kind: "placement",
                nodes,
                want,
                naive_ns,
                fast_ns,
            });
        }

        // Pure selection: the indexed descent must return byte-identical
        // placements to the retained scans before timing means anything.
        assert_eq!(
            case.select_indexed(SELECT_WANT),
            case.select_scan(SELECT_WANT),
            "{label}: indexed selectors diverged from the scan baselines"
        );
        let scan_ns = median_ns(ITERS, || {
            std::hint::black_box(case.select_scan(SELECT_WANT));
        });
        let indexed_ns = median_ns(ITERS, || {
            std::hint::black_box(case.select_indexed(SELECT_WANT));
        });
        rows.push(Row {
            label: format!("select_{label}"),
            kind: "selection",
            nodes,
            want: SELECT_WANT,
            naive_ns: scan_ns,
            fast_ns: indexed_ns,
        });
    }
    rows
}

/// Measure annealed-search throughput: whole seeded searches on the Theta
/// preset (a 256-node comm probe over the half-occupied cluster), counting
/// actual evaluator calls. Distinct seeds per search keep the walk from
/// replaying one memoized trajectory; the shared evaluator is reused
/// across searches exactly as the engine reuses it across jobs.
fn measure_sa() -> f64 {
    let case = PlacementCase::new(SystemPreset::Theta, 256);
    let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));
    // Warm-up search: the annealing loop must actually run here, or the
    // throughput number would be measuring the incumbent fast path.
    let warm = case
        .run_sa(SA_BUDGET, 7, &eval)
        .expect("theta case enters the annealing loop");
    assert!(warm.evals > 0, "warm-up search performed no evaluations");
    let mut total_evals = 0u64;
    let t = Instant::now();
    for i in 0..ITERS {
        let stats = case
            .run_sa(SA_BUDGET, 7 + i as u64, &eval)
            .expect("theta case enters the annealing loop");
        total_evals += u64::from(stats.evals);
    }
    commsched_core::evals_per_sec(total_evals, t.elapsed().as_nanos() as u64)
}

/// Enforce the annealed-search throughput floor; exits 1 when it fails.
fn check_sa_gate(eps: f64) {
    if eps < SA_MIN_EVALS_PER_SEC {
        eprintln!(
            "gate FAILED: sa_theta_256 sustains only {eps:.0} evals/s \
             (required: {SA_MIN_EVALS_PER_SEC:.0})"
        );
        std::process::exit(1);
    }
    eprintln!(
        "gate ok: sa_theta_256 {:.2}M sa evals/s (floor {:.1}M)",
        eps / 1e6,
        SA_MIN_EVALS_PER_SEC / 1e6
    );
}

/// Enforce the exascale gate on live numbers; exits 1 when it fails.
fn check_gate(rows: &[Row]) {
    let gate = rows
        .iter()
        .find(|r| r.label == GATE_CASE)
        .unwrap_or_else(|| panic!("gate case {GATE_CASE} was not measured"));
    let speedup = gate.naive_ns / gate.fast_ns;
    if speedup < GATE_MIN_SPEEDUP {
        eprintln!(
            "gate FAILED: {GATE_CASE} indexed selection is only {speedup:.2}x over the \
             linear scan (required: {GATE_MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }
    eprintln!("gate ok: {GATE_CASE} indexed selection {speedup:.1}x over the linear scan");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: bench_engine --check <baseline.json>");
            std::process::exit(2);
        };
        let rows = measure();
        check_gate(&rows);
        check_sa_gate(measure_sa());
        let live: Vec<(String, f64)> = rows.into_iter().map(|r| (r.label, r.fast_ns)).collect();
        baseline::check_or_exit(path, &live);
    }

    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let rows = measure();

    let mut entries = Vec::new();
    for row in &rows {
        let Row {
            label,
            kind,
            nodes,
            want,
            naive_ns,
            fast_ns,
        } = row;
        let speedup = naive_ns / fast_ns;
        let baseline_key = if *kind == "selection" {
            "scan_median_ns"
        } else {
            "naive_median_ns"
        };
        eprintln!(
            "{label}: baseline {:.1} µs, fast {:.1} µs, speedup {speedup:.1}x",
            naive_ns / 1e3,
            fast_ns / 1e3
        );
        entries.push(format!(
            "    {{\n      \"case\": \"{label}\",\n      \"kind\": \"{kind}\",\n      \"nodes\": {nodes},\n      \"request\": {want},\n      \"{baseline_key}\": {naive_ns:.0},\n      \"fast_median_ns\": {fast_ns:.0},\n      \"speedup\": {speedup:.2}\n    }}"
        ));
    }

    check_gate(&rows);
    let sa_eps = measure_sa();
    check_sa_gate(sa_eps);

    // `sa` is an absolute-throughput case, not a fast-vs-naive pair, so it
    // lives outside `results` (the regression checker compares
    // `fast_median_ns` entries; the SA floor is re-measured live instead).
    let json = format!(
        "{{\n  \"bench\": \"placement evaluation (fast vs retained-naive) and node selection (free-count index vs retained linear scan)\",\n  \"iters\": {ITERS},\n  \"gate\": {{\n    \"case\": \"{GATE_CASE}\",\n    \"min_speedup\": {GATE_MIN_SPEEDUP:.1}\n  }},\n  \"sa\": {{\n    \"case\": \"sa_theta_256\",\n    \"budget\": {SA_BUDGET},\n    \"searches\": {ITERS},\n    \"sa_evals_per_sec\": {sa_eps:.0},\n    \"min_evals_per_sec\": {SA_MIN_EVALS_PER_SEC:.0}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
