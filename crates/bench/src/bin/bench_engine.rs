//! Measure fast-vs-naive placement evaluation and write `BENCH_engine.json`.
//!
//! The seed revision cannot be rebuilt in this offline environment, so the
//! baseline is the *retained* naive pipeline (clone-based what-if states +
//! four `job_cost` traversals per component — see
//! [`commsched_bench::perf`]) measured in the same binary as the fused
//! [`commsched_core::PlacementEvaluator`] path. Medians of `ITERS` single
//! placements at Theta and Mira scale, in nanoseconds.
//!
//! ```text
//! cargo run --release -p commsched-bench --bin bench_engine [out.json]
//! ```

use commsched_bench::perf::PlacementCase;
use commsched_core::PlacementEvaluator;
use commsched_topology::SystemPreset;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const ITERS: usize = 31;

fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut entries = Vec::new();

    for (label, preset, want) in [
        ("theta_256", SystemPreset::Theta, 256usize),
        ("mira_2048", SystemPreset::Mira, 2048usize),
    ] {
        let case = PlacementCase::new(preset, want);
        let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));

        // The two paths must agree exactly before timing means anything.
        let naive = case.place_naive();
        let fast = case.place_fast(&eval);
        assert_eq!(
            naive.cost_actual.to_bits(),
            fast.cost_actual.to_bits(),
            "{label}: fast path diverged from naive"
        );
        assert_eq!(naive.cost_default.to_bits(), fast.cost_default.to_bits());
        assert_eq!(naive.adjusted.to_bits(), fast.adjusted.to_bits());

        let naive_ns = median_ns(ITERS, || {
            std::hint::black_box(case.place_naive());
        });
        let fast_ns = median_ns(ITERS, || {
            std::hint::black_box(case.place_fast(&eval));
        });
        let speedup = naive_ns / fast_ns;
        eprintln!(
            "{label}: naive {:.1} µs, fast {:.1} µs, speedup {speedup:.1}x",
            naive_ns / 1e3,
            fast_ns / 1e3
        );
        entries.push(format!(
            "    {{\n      \"case\": \"{label}\",\n      \"nodes\": {},\n      \"request\": {want},\n      \"naive_median_ns\": {naive_ns:.0},\n      \"fast_median_ns\": {fast_ns:.0},\n      \"speedup\": {speedup:.2}\n    }}",
            case.tree.num_nodes()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"single placement evaluation (adaptive select + Eq.6/Eq.7), fast vs retained-naive\",\n  \"iters\": {ITERS},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
