//! Measure the flow-simulator fast paths and write `BENCH_netsim.json`.
//!
//! Two comparisons, both inside the same binary:
//!
//! 1. **Rate solver** — the incremental dirty-frontier max–min solver vs
//!    the retained naive full fixpoint ([`commsched_netsim::SolverKind`])
//!    on the steady-state and churn scenarios from
//!    [`commsched_bench::perf::NetsimCase`]. The two solvers are asserted
//!    bit-identical on every scenario before timing means anything.
//! 2. **Sweep harness** — a reduced Figure 6 sweep (3 systems × 5 mixes ×
//!    4 selectors) under rayon thread pools of 1, 2 and 4 threads,
//!    asserting the rendered output is identical at every count. The
//!    1-vs-4-thread wall-clock ratio is the `parallel_speedup` gate: on a
//!    multi-core host (`host_cpus > 1`) a ratio <= 1.0 means the
//!    persistent pool is not paying for itself and the run fails (exit 1);
//!    on a single-core host the gate is recorded as skipped, because no
//!    scheduler can conjure parallel speedup out of one CPU.
//!
//! ```text
//! cargo run --release -p commsched-bench --bin bench_netsim [out.json]
//! cargo run --release -p commsched-bench --bin bench_netsim -- --check BENCH_netsim.json
//! ```
//!
//! `--check` re-measures the solver fast path and fails (exit 1) if any
//! case regresses more than 2x against the baseline's medians; sweep
//! wall-clock is machine-dependent and is never gated.

use commsched_bench::baseline;
use commsched_bench::experiments::fig6;
use commsched_bench::perf::NetsimCase;
use commsched_bench::Scale;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

const ITERS: usize = 21;
const SWEEP_ITERS: usize = 3;
const SWEEP_SCALE: Scale = Scale { jobs: 40, seed: 42 };

fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Measure both solvers on every scenario; returns `(case, fast_ns,
/// naive_ns, nodes, jobs)` rows.
fn measure_solvers() -> Vec<(String, f64, f64, usize, usize)> {
    [NetsimCase::steady_state(), NetsimCase::churn()]
        .into_iter()
        .map(|case| {
            // Bit-identical results are a hard precondition for the
            // comparison (also property-tested in commsched-netsim).
            assert_eq!(
                case.run_fast(),
                case.run_naive(),
                "{}: incremental solver diverged from naive",
                case.name
            );
            let fast_ns = median_ns(ITERS, || {
                std::hint::black_box(case.run_fast());
            });
            let naive_ns = median_ns(ITERS, || {
                std::hint::black_box(case.run_naive());
            });
            (
                case.name.to_string(),
                fast_ns,
                naive_ns,
                case.tree.num_nodes(),
                case.workloads.len(),
            )
        })
        .collect()
}

fn sweep_under(threads: usize) -> (f64, commsched_bench::ExperimentResult) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let result = pool.install(|| fig6(SWEEP_SCALE));
    let ns = median_ns(SWEEP_ITERS, || {
        pool.install(|| {
            std::hint::black_box(fig6(SWEEP_SCALE));
        });
    });
    (ns, result)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: bench_netsim --check <baseline.json>");
            std::process::exit(2);
        };
        let live: Vec<(String, f64)> = measure_solvers()
            .into_iter()
            .map(|(case, fast_ns, _, _, _)| (case, fast_ns))
            .collect();
        baseline::check_or_exit(path, &live);
    }

    let out = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_netsim.json".to_string());

    let mut entries = Vec::new();
    for (case, fast_ns, naive_ns, nodes, jobs) in measure_solvers() {
        let speedup = naive_ns / fast_ns;
        eprintln!(
            "{case}: naive {:.2} ms, fast {:.2} ms, speedup {speedup:.1}x",
            naive_ns / 1e6,
            fast_ns / 1e6
        );
        entries.push(format!(
            "    {{\n      \"case\": \"{case}\",\n      \"nodes\": {nodes},\n      \"jobs\": {jobs},\n      \"naive_median_ns\": {naive_ns:.0},\n      \"fast_median_ns\": {fast_ns:.0},\n      \"speedup\": {speedup:.2}\n    }}"
        ));
    }

    // Reduced Figure 6 sweep under 1, 2 and 4 threads. The outputs must
    // match exactly (the vendored rayon stitches chunk results in source
    // order); the wall-clock ratios depend on the host's core count.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (ns_1, res_1) = sweep_under(1);
    let (ns_2, res_2) = sweep_under(2);
    let (ns_4, res_4) = sweep_under(4);
    for (threads, res) in [(2usize, &res_2), (4, &res_4)] {
        assert_eq!(
            res_1.text, res.text,
            "sweep text differs between 1 and {threads} threads"
        );
        assert_eq!(
            res_1.json, res.json,
            "sweep json differs between 1 and {threads} threads"
        );
    }
    let parallel_speedup = ns_1 / ns_4;
    eprintln!(
        "fig6 sweep ({} jobs/log): 1 thread {:.2} s, 2 threads {:.2} s, 4 threads {:.2} s, 1->4 ratio {parallel_speedup:.2}x (host has {host_cpus} cpu(s))",
        SWEEP_SCALE.jobs,
        ns_1 / 1e9,
        ns_2 / 1e9,
        ns_4 / 1e9
    );

    // The speedup gate: a multi-core host that sees no gain from 4
    // threads means the pool's overhead ate the parallelism — hard-fail
    // so CI catches the regression. A single-core host has nothing to
    // speed up, so the gate is honestly recorded as skipped.
    let gate_failed = host_cpus > 1 && parallel_speedup <= 1.0;
    let gate = if host_cpus == 1 {
        "skipped (host_cpus=1)".to_string()
    } else if gate_failed {
        format!("failed (parallel_speedup={parallel_speedup:.2} <= 1.0)")
    } else {
        "passed".to_string()
    };

    let json = format!(
        "{{\n  \"bench\": \"flow-level network simulation: incremental vs retained-naive max-min solver, and fig6 sweep scaling\",\n  \"iters\": {ITERS},\n  \"host_cpus\": {host_cpus},\n  \"results\": [\n{}\n  ],\n  \"sweep\": {{\n    \"experiment\": \"fig6\",\n    \"jobs_per_log\": {},\n    \"iters\": {SWEEP_ITERS},\n    \"threads_1_median_ns\": {ns_1:.0},\n    \"threads_2_median_ns\": {ns_2:.0},\n    \"threads_4_median_ns\": {ns_4:.0},\n    \"parallel_speedup\": {parallel_speedup:.2},\n    \"identical_across_threads\": true,\n    \"gate\": \"{gate}\"\n  }}\n}}\n",
        entries.join(",\n"),
        SWEEP_SCALE.jobs
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if gate_failed {
        eprintln!(
            "error: parallel speedup gate failed: {parallel_speedup:.2}x at 4 threads on a \
             {host_cpus}-cpu host (the persistent pool must beat sequential on multi-core)"
        );
        std::process::exit(1);
    }
}
