//! Fault-injection sweep — failure rate × requeue policy × selector on the
//! Theta log. Not a paper artifact (the paper assumes a healthy machine):
//! this quantifies how much of the communication-aware placement gain
//! survives node failures, and what each requeue policy costs.
//!
//! One seeded MTBF/MTTR trace is generated per failure rate and shared by
//! every (policy, selector) cell at that rate, so cells differ only in how
//! the scheduler reacts — never in which nodes die when.

use crate::{build_log, ExperimentResult, LogShape, Scale};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_slurmsim::{Engine, EngineConfig, FailurePolicy, JobStatus};
use commsched_topology::SystemPreset;
use commsched_workload::{FaultTrace, SystemModel};
use rayon::prelude::*;
use serde_json::json;

/// Mean time to repair for every sweep cell, seconds (4 h).
const MTTR_SECS: f64 = 14_400.0;

/// One (rate, policy, selector) cell of the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultRow {
    /// Per-node MTBF in seconds; 0 for the failure-free baseline.
    pub mtbf_secs: f64,
    /// Policy label: `cancel`, `requeue`, `requeue-front`, or `-` for the
    /// failure-free baseline (policies are indistinguishable there).
    pub policy: String,
    /// Selector name.
    pub selector: String,
    /// Jobs that finished.
    pub completed: usize,
    /// Jobs cancelled by failures (directly or after exhausting retries).
    pub cancelled: usize,
    /// Total requeues across all jobs.
    pub requeues: u64,
    /// Node-hours of work destroyed by failures.
    pub lost_node_hours: f64,
    /// Total execution hours (the paper's headline metric).
    pub exec_hours: f64,
    /// Mean turnaround in hours.
    pub turnaround_hours: f64,
}

/// Run the failure-rate × policy × selector sweep.
pub fn faults(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();
    let log = build_log(system, scale, 90, LogShape::Pattern(Pattern::Rhvd));
    // Faults cover twice the log's nominal span so requeued work that runs
    // past the last submit still sees failures.
    let horizon = log
        .jobs
        .iter()
        .map(|j| j.submit + j.walltime)
        .max()
        .unwrap_or(0)
        .saturating_mul(2)
        .max(1);

    let rates: [f64; 2] = [5.0e6, 1.0e6];
    let policies: [(&str, FailurePolicy); 3] = [
        ("cancel", FailurePolicy::Cancel),
        (
            "requeue",
            FailurePolicy::Requeue {
                max_retries: 3,
                backoff: 0,
            },
        ),
        ("requeue-front", FailurePolicy::RequeueFront),
    ];

    let traces: Vec<(f64, FaultTrace)> = rates
        .iter()
        .map(|&mtbf| {
            let trace = FaultTrace::mtbf(
                tree.num_nodes(),
                mtbf,
                MTTR_SECS,
                horizon,
                scale.seed ^ 0xFA17,
            )
            .expect("sweep MTBF parameters are valid");
            (mtbf, trace)
        })
        .collect();

    // The cell grid, in deterministic source order: the failure-free
    // baseline once per selector, then every rate × policy × selector.
    let mut cells: Vec<(f64, &str, FailurePolicy, Option<&FaultTrace>, SelectorKind)> = Vec::new();
    for kind in SelectorKind::ALL {
        cells.push((0.0, "-", FailurePolicy::Cancel, None, kind));
    }
    for (mtbf, trace) in &traces {
        for &(label, policy) in &policies {
            for kind in SelectorKind::ALL {
                cells.push((*mtbf, label, policy, Some(trace), kind));
            }
        }
    }

    let rows: Vec<FaultRow> = cells
        .par_iter()
        .map(|&(mtbf, policy_label, policy, trace, kind)| {
            let cfg = EngineConfig::new(kind).with_failure_policy(policy);
            let mut engine = Engine::new(&tree, cfg);
            if let Some(t) = trace {
                engine = engine.with_faults(t.clone());
            }
            let s = engine.run(&log).expect("log fits the Theta preset");
            FaultRow {
                mtbf_secs: mtbf,
                policy: policy_label.to_string(),
                selector: kind.name().to_string(),
                completed: s.count_status(JobStatus::Completed),
                cancelled: s.count_status(JobStatus::Cancelled),
                requeues: s.total_retries(),
                lost_node_hours: s.lost_node_hours(),
                exec_hours: s.total_exec_hours(),
                turnaround_hours: s.avg_turnaround_hours(),
            }
        })
        .collect();

    let mut t = Table::new(
        [
            "MTBF(s)",
            "policy",
            "selector",
            "done",
            "cancelled",
            "requeues",
            "lost nh",
            "exec(h)",
            "turnaround(h)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows.iter().filter(|r| r.selector == "adaptive") {
        t.row(vec![
            if r.mtbf_secs == 0.0 {
                "-".into()
            } else {
                format!("{:.0}", r.mtbf_secs)
            },
            r.policy.clone(),
            r.selector.clone(),
            r.completed.to_string(),
            r.cancelled.to_string(),
            r.requeues.to_string(),
            format!("{:.1}", r.lost_node_hours),
            format!("{:.1}", r.exec_hours),
            format!("{:.2}", r.turnaround_hours),
        ]);
    }

    // Headline shape: failures only destroy work (lost node-hours grow as
    // MTBF shrinks), and requeueing completes at least as many jobs as
    // cancelling under the same trace.
    let adaptive = |mtbf: f64, policy: &str| -> &FaultRow {
        rows.iter()
            .find(|r| r.selector == "adaptive" && r.mtbf_secs == mtbf && r.policy == policy)
            .expect("cell present")
    };
    let shape = format!(
        "adaptive: lost node-hours 0.0 (healthy) <= {:.1} (MTBF 5e6s) <= {:.1} (MTBF 1e6s) \
         under requeue; completed {} (cancel) <= {} (requeue) at MTBF 1e6s\n",
        adaptive(5.0e6, "requeue").lost_node_hours,
        adaptive(1.0e6, "requeue").lost_node_hours,
        adaptive(1.0e6, "cancel").completed,
        adaptive(1.0e6, "requeue").completed,
    );

    let text = format!(
        "Fault sweep: per-node MTBF x requeue policy x selector, Theta log \
         (90% RHVD, MTTR {MTTR_SECS:.0}s; adaptive shown, all selectors in JSON)\n\n{t}\n{shape}"
    );
    ExperimentResult {
        name: "faults",
        text,
        json: json!({
            "jobs": scale.jobs,
            "mttr_secs": MTTR_SECS,
            "horizon_secs": horizon,
            "rows": rows,
        }),
    }
}
