//! Fault-injection sweep — failure rate × requeue policy × selector on the
//! Theta log. Not a paper artifact (the paper assumes a healthy machine):
//! this quantifies how much of the communication-aware placement gain
//! survives node failures, and what each requeue policy costs.
//!
//! One seeded MTBF/MTTR trace is generated per failure rate and shared by
//! every (policy, selector) cell at that rate, so cells differ only in how
//! the scheduler reacts — never in which nodes die when.

use crate::{build_log, ExperimentResult, LogShape, Scale};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_slurmsim::{Engine, EngineConfig, FailurePolicy, JobStatus};
use commsched_topology::SystemPreset;
use commsched_workload::{FaultTrace, SystemModel};
use rayon::prelude::*;
use serde_json::json;

/// Mean time to repair for every sweep cell, seconds (4 h).
const MTTR_SECS: f64 = 14_400.0;

/// One (domain, rate, policy, selector) cell of the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultRow {
    /// Fault domain of the injected trace: `node`, `switch`, `link`, or
    /// `-` for the failure-free baseline.
    pub domain: String,
    /// Per-target MTBF in seconds; 0 for the failure-free baseline.
    pub mtbf_secs: f64,
    /// Policy label: `cancel`, `requeue`, `requeue-front`, or `-` for the
    /// failure-free baseline (policies are indistinguishable there).
    pub policy: String,
    /// Selector name.
    pub selector: String,
    /// Jobs that finished.
    pub completed: usize,
    /// Jobs cancelled by failures (directly or after exhausting retries).
    pub cancelled: usize,
    /// Total requeues across all jobs.
    pub requeues: u64,
    /// Node-hours of work destroyed by failures.
    pub lost_node_hours: f64,
    /// Total execution hours (the paper's headline metric).
    pub exec_hours: f64,
    /// Mean turnaround in hours.
    pub turnaround_hours: f64,
}

/// Run the failure-rate × policy × selector sweep.
pub fn faults(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();
    let log = build_log(system, scale, 90, LogShape::Pattern(Pattern::Rhvd));
    // Faults cover twice the log's nominal span so requeued work that runs
    // past the last submit still sees failures.
    let horizon = log
        .jobs
        .iter()
        .map(|j| j.submit + j.walltime)
        .max()
        .unwrap_or(0)
        .saturating_mul(2)
        .max(1);

    let rates: [f64; 2] = [5.0e6, 1.0e6];
    let policies: [(&str, FailurePolicy); 3] = [
        ("cancel", FailurePolicy::Cancel),
        (
            "requeue",
            FailurePolicy::Requeue {
                max_retries: 3,
                backoff: 0,
            },
        ),
        ("requeue-front", FailurePolicy::RequeueFront),
    ];

    let traces: Vec<(f64, FaultTrace)> = rates
        .iter()
        .map(|&mtbf| {
            let trace = FaultTrace::mtbf(
                tree.num_nodes(),
                mtbf,
                MTTR_SECS,
                horizon,
                scale.seed ^ 0xFA17,
            )
            .expect("sweep MTBF parameters are valid");
            (mtbf, trace)
        })
        .collect();

    // Fault-domain axis: one switch-churn trace (correlated subtree
    // outages; the root is filtered so the whole machine never goes dark)
    // and one degraded-cable trace (capacity drops to 250‰ until repair —
    // no kills, only slowdown, so the policy column stays "-").
    let switch_mtbf_secs = 2.0e6;
    let switch_trace = {
        let all = FaultTrace::switch_mtbf(
            tree.num_switches(),
            switch_mtbf_secs,
            MTTR_SECS,
            horizon,
            scale.seed ^ 0x5A17,
        )
        .expect("sweep switch-MTBF parameters are valid");
        let root = tree.root().0;
        FaultTrace::new(
            all.events()
                .iter()
                .filter(|e| e.node != root)
                .copied()
                .collect(),
        )
    };
    let link_mtbf_secs = 1.0e6;
    let link_trace = FaultTrace::link_degrade(
        tree.num_directed_links(),
        link_mtbf_secs,
        MTTR_SECS,
        250,
        horizon,
        scale.seed ^ 0x11A7,
    )
    .expect("sweep link-degrade parameters are valid");

    // The cell grid, in deterministic source order: the failure-free
    // baseline once per selector, the node-domain rate × policy ×
    // selector sweep, then the switch and link domains.
    type Cell<'a> = (
        &'static str,
        f64,
        &'static str,
        FailurePolicy,
        Option<&'a FaultTrace>,
        SelectorKind,
    );
    let mut cells: Vec<Cell<'_>> = Vec::new();
    for kind in SelectorKind::ALL {
        cells.push(("-", 0.0, "-", FailurePolicy::Cancel, None, kind));
    }
    for (mtbf, trace) in &traces {
        for &(label, policy) in &policies {
            for kind in SelectorKind::ALL {
                cells.push(("node", *mtbf, label, policy, Some(trace), kind));
            }
        }
    }
    for &(label, policy) in &policies {
        for kind in SelectorKind::ALL {
            cells.push((
                "switch",
                switch_mtbf_secs,
                label,
                policy,
                Some(&switch_trace),
                kind,
            ));
        }
    }
    for kind in SelectorKind::ALL {
        // Degraded links kill nothing, so the failure policy is moot.
        cells.push((
            "link",
            link_mtbf_secs,
            "-",
            FailurePolicy::Cancel,
            Some(&link_trace),
            kind,
        ));
    }

    let rows: Vec<FaultRow> = cells
        .par_iter()
        .map(|&(domain, mtbf, policy_label, policy, trace, kind)| {
            let cfg = EngineConfig::new(kind).with_failure_policy(policy);
            let mut engine = Engine::new(&tree, cfg);
            if let Some(t) = trace {
                engine = engine.with_faults(t.clone());
            }
            let s = engine.run(&log).expect("log fits the Theta preset");
            FaultRow {
                domain: domain.to_string(),
                mtbf_secs: mtbf,
                policy: policy_label.to_string(),
                selector: kind.name().to_string(),
                completed: s.count_status(JobStatus::Completed),
                cancelled: s.count_status(JobStatus::Cancelled),
                requeues: s.total_retries(),
                lost_node_hours: s.lost_node_hours(),
                exec_hours: s.total_exec_hours(),
                turnaround_hours: s.avg_turnaround_hours(),
            }
        })
        .collect();

    let mut t = Table::new(
        [
            "domain",
            "MTBF(s)",
            "policy",
            "selector",
            "done",
            "cancelled",
            "requeues",
            "lost nh",
            "exec(h)",
            "turnaround(h)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in rows.iter().filter(|r| r.selector == "adaptive") {
        t.row(vec![
            r.domain.clone(),
            if r.mtbf_secs == 0.0 {
                "-".into()
            } else {
                format!("{:.0}", r.mtbf_secs)
            },
            r.policy.clone(),
            r.selector.clone(),
            r.completed.to_string(),
            r.cancelled.to_string(),
            r.requeues.to_string(),
            format!("{:.1}", r.lost_node_hours),
            format!("{:.1}", r.exec_hours),
            format!("{:.2}", r.turnaround_hours),
        ]);
    }

    // Headline shape: failures only destroy work (lost node-hours grow as
    // MTBF shrinks), and requeueing completes at least as many jobs as
    // cancelling under the same trace.
    let adaptive = |domain: &str, mtbf: f64, policy: &str| -> &FaultRow {
        rows.iter()
            .find(|r| {
                r.selector == "adaptive"
                    && r.domain == domain
                    && r.mtbf_secs == mtbf
                    && r.policy == policy
            })
            .expect("cell present")
    };
    let shape = format!(
        "adaptive: lost node-hours 0.0 (healthy) <= {:.1} (MTBF 5e6s) <= {:.1} (MTBF 1e6s) \
         under requeue; completed {} (cancel) <= {} (requeue) at MTBF 1e6s\n\
         switch outages (requeue): {} completed, {:.1} node-hours lost; \
         degraded links kill nothing: {} completed, exec {:.1}h >= healthy {:.1}h\n",
        adaptive("node", 5.0e6, "requeue").lost_node_hours,
        adaptive("node", 1.0e6, "requeue").lost_node_hours,
        adaptive("node", 1.0e6, "cancel").completed,
        adaptive("node", 1.0e6, "requeue").completed,
        adaptive("switch", switch_mtbf_secs, "requeue").completed,
        adaptive("switch", switch_mtbf_secs, "requeue").lost_node_hours,
        adaptive("link", link_mtbf_secs, "-").completed,
        adaptive("link", link_mtbf_secs, "-").exec_hours,
        adaptive("-", 0.0, "-").exec_hours,
    );

    let text = format!(
        "Fault sweep: fault domain x MTBF x requeue policy x selector, Theta log \
         (90% RHVD, MTTR {MTTR_SECS:.0}s; adaptive shown, all selectors in JSON)\n\n{t}\n{shape}"
    );
    ExperimentResult {
        name: "faults",
        text,
        json: json!({
            "jobs": scale.jobs,
            "mttr_secs": MTTR_SECS,
            "horizon_secs": horizon,
            "rows": rows,
        }),
    }
}
