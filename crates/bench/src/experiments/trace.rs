//! Observability demo + golden-trace scenarios.
//!
//! Not a paper artifact: this experiment drives the instrumented engine
//! and flow simulator through small, fully deterministic scenarios
//! and reports what their traces contain. The same scenario definitions
//! back the golden-trace conformance suite (`tests/golden_trace.rs`),
//! which pins the exact trace bytes, so the scenarios must never depend
//! on wall clocks, thread counts, or map iteration order.

use crate::{ExperimentResult, Scale};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{SaBudget, SelectorKind};
use commsched_metrics::{Registry, Table};
use commsched_netsim::{FlowSim, NetConfig, Workload};
use commsched_slurmsim::{BackfillPolicy, Engine, EngineConfig, FailurePolicy};
use commsched_topology::{NodeId, Tree};
use commsched_trace::{Capture, EventClass};
use commsched_workload::{FaultTrace, JobLog, LogSpec, SystemModel};
use serde_json::json;

/// Every golden scenario name, in the order the suite checks them.
pub const GOLDEN_SCENARIOS: [&str; 6] = [
    "fifo-easy-greedy",
    "adaptive",
    "faulted-requeue",
    "switch-outage",
    "netsim-interference",
    "sa_tournament",
];

/// The 32-node golden machine: 4 leaf switches of 8 nodes.
fn golden_tree() -> Tree {
    Tree::regular_two_level(4, 8)
}

/// A small synthetic system sized to the golden machine, so quick runs
/// queue realistically without taking long.
fn golden_system() -> SystemModel {
    SystemModel {
        name: "golden",
        total_nodes: 32,
        min_request: 1,
        max_request: 16,
        pow2_fraction: 0.9,
        mean_interarrival: 60.0,
        runtime_median: 600.0,
        runtime_sigma: 1.0,
        walltime_slack: 1.5,
    }
}

fn golden_log(jobs: usize, seed: u64) -> JobLog {
    LogSpec::new(golden_system(), jobs, seed)
        .comm_percent(90)
        .pattern(Pattern::Rhvd)
        .comm_fraction(0.5)
        .generate()
}

/// Overlapping collectives on a 16-node tree: two jobs share leaf
/// switches, a third runs alone, a fourth arrives late.
fn golden_netsim_workloads() -> Vec<Workload> {
    let wl = |id: u64, nodes: &[usize], spec: CollectiveSpec, submit: f64, iters: usize| Workload {
        id,
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        spec,
        submit,
        iterations: iters,
    };
    vec![
        wl(
            1,
            &[0, 1, 2, 3, 4, 5],
            CollectiveSpec::new(Pattern::Rhvd, 1 << 20),
            0.0,
            2,
        ),
        wl(
            2,
            &[4, 5, 6, 7, 8, 9],
            CollectiveSpec::new(Pattern::Rd, 1 << 19),
            0.3,
            2,
        ),
        wl(
            3,
            &[12, 13, 14, 15],
            CollectiveSpec::new(Pattern::Ring, 1 << 18),
            0.6,
            1,
        ),
        wl(
            4,
            &[2, 3, 10, 11],
            CollectiveSpec::new(Pattern::Binomial, 1 << 19),
            1.0,
            2,
        ),
    ]
}

/// Run one golden scenario: the full-class JSONL trace plus the pretty
/// `RunReport` JSON. Returns `None` for an unknown scenario name.
pub fn run_golden(name: &str, jobs: usize, seed: u64) -> Option<(String, String)> {
    let (kind, faulted) = match name {
        "fifo-easy-greedy" => (SelectorKind::Greedy, false),
        "adaptive" => (SelectorKind::Adaptive, false),
        "faulted-requeue" => (SelectorKind::Balanced, true),
        "switch-outage" => {
            // Hierarchical fault domains mid-run: one leaf switch goes dark
            // (killing and requeueing everything under it), one node uplink
            // runs degraded for a while. Written as fault-trace *text* so
            // the scenario also pins the parser's round-trip.
            let tree = golden_tree();
            let log = golden_log(jobs, seed);
            let mut cfg = EngineConfig::new(SelectorKind::Adaptive);
            cfg.backfill = BackfillPolicy::Easy;
            cfg = cfg.with_failure_policy(FailurePolicy::Requeue {
                max_retries: 2,
                backoff: 30,
            });
            let leaf1 = tree.leaf(1).0;
            let uplink = tree.node_uplink(NodeId(3));
            let text = format!(
                "600 link:{uplink} degrade 500\n\
                 900 switch:{leaf1} down\n\
                 1500 link:{uplink} restore\n\
                 2400 switch:{leaf1} up\n"
            );
            let faults = FaultTrace::parse(&text).expect("golden fault trace parses");
            let engine = Engine::new(&tree, cfg).with_faults(faults);
            let mut cap = Capture::new();
            let mut reg = Registry::new();
            engine
                .run_observed(&log, &mut cap, &mut reg)
                .expect("golden log fits the golden machine");
            return Some((cap.to_jsonl(), reg.snapshot().to_json_pretty()));
        }
        "sa_tournament" => {
            // Annealed placement over the table3-shaped golden workload:
            // pins the `sa_search` event stream (budget 64, search seed =
            // the scenario seed) and the lazy SA counters next to the
            // regular job lifecycle — the full SA observability surface.
            let tree = golden_tree();
            let log = golden_log(jobs, seed);
            let mut cfg = EngineConfig::new(SelectorKind::Sa);
            cfg.backfill = BackfillPolicy::Easy;
            cfg = cfg.with_sa(SaBudget::with_evals(64), seed);
            let engine = Engine::new(&tree, cfg);
            let mut cap = Capture::new();
            let mut reg = Registry::new();
            engine
                .run_observed(&log, &mut cap, &mut reg)
                .expect("golden log fits the golden machine");
            return Some((cap.to_jsonl(), reg.snapshot().to_json_pretty()));
        }
        "netsim-interference" => {
            let tree = Tree::regular_two_level(2, 8);
            let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
            let mut cap = Capture::new();
            let results = sim.run_traced(golden_netsim_workloads(), &mut cap);
            // The flow simulator has no registry of its own; summarize the
            // captured solver records so the report is still meaningful.
            let mut reg = Registry::new();
            let solves = reg.counter("net.solves");
            let jobs_done = reg.counter("net.jobs");
            let rate_h = reg.hist("net.min_rate_bps");
            for ev in &cap.events {
                match ev.kind {
                    commsched_trace::EventKind::NetSolve { .. } => reg.inc(solves, 1),
                    commsched_trace::EventKind::NetRates { min_rate, .. } => {
                        reg.observe(rate_h, min_rate)
                    }
                    // The flow simulator emits no scheduler or fault
                    // events; listing the variants keeps this summary
                    // honest when the trace schema grows.
                    commsched_trace::EventKind::JobSubmit { .. }
                    | commsched_trace::EventKind::JobEligible { .. }
                    | commsched_trace::EventKind::JobPlace { .. }
                    | commsched_trace::EventKind::SaSearch { .. }
                    | commsched_trace::EventKind::JobStart { .. }
                    | commsched_trace::EventKind::JobFinish { .. }
                    | commsched_trace::EventKind::JobRequeue { .. }
                    | commsched_trace::EventKind::JobReject { .. }
                    | commsched_trace::EventKind::Fault { .. }
                    | commsched_trace::EventKind::SwitchFault { .. }
                    | commsched_trace::EventKind::LinkFault { .. }
                    | commsched_trace::EventKind::NetLinks { .. } => {}
                }
            }
            reg.inc(jobs_done, results.len() as u64);
            return Some((cap.to_jsonl(), reg.snapshot().to_json_pretty()));
        }
        _ => return None,
    };

    let tree = golden_tree();
    let log = golden_log(jobs, seed);
    let mut cfg = EngineConfig::new(kind);
    cfg.backfill = BackfillPolicy::Easy;
    if faulted {
        cfg = cfg.with_failure_policy(FailurePolicy::Requeue {
            max_retries: 2,
            backoff: 30,
        });
    }
    let mut engine = Engine::new(&tree, cfg);
    if faulted {
        let horizon = log
            .jobs
            .iter()
            .map(|j| j.submit + j.walltime)
            .max()
            .unwrap_or(0)
            .saturating_mul(2)
            .max(1);
        let faults = FaultTrace::mtbf(tree.num_nodes(), 40_000.0, 5_000.0, horizon, seed ^ 0xFA17)
            .expect("golden MTBF parameters are valid");
        engine = engine.with_faults(faults);
    }
    let mut cap = Capture::new();
    let mut reg = Registry::new();
    engine
        .run_observed(&log, &mut cap, &mut reg)
        .expect("golden log fits the golden machine");
    Some((cap.to_jsonl(), reg.snapshot().to_json_pretty()))
}

/// Run every golden scenario and summarize what the traces contain.
pub fn trace(scale: Scale) -> ExperimentResult {
    // Golden files are pinned at (jobs=24, seed=7); the experiment itself
    // scales with --jobs so bigger runs still exercise the instrumentation.
    let jobs = scale.jobs.min(200);

    let mut t = Table::new(
        [
            "scenario",
            "events",
            "job ev",
            "fault ev",
            "net ev",
            "trace bytes",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut rows = Vec::new();
    for name in GOLDEN_SCENARIOS {
        let (jsonl, report) = run_golden(name, jobs, scale.seed)
            .expect("GOLDEN_SCENARIOS only lists known scenarios");
        // Replay determinism: the same scenario must reproduce the same
        // bytes within a single process, or the golden suite is meaningless.
        let (jsonl2, report2) = run_golden(name, jobs, scale.seed).expect("known scenario");
        assert_eq!(jsonl, jsonl2, "{name}: trace not replay-stable");
        assert_eq!(report, report2, "{name}: report not replay-stable");

        let mut by_class = [0u64; 3];
        let mut events = 0u64;
        for line in jsonl.lines() {
            events += 1;
            // Fixed key order: the class is recoverable from the "ev" name.
            let class = if line.contains("\"ev\":\"net_") {
                EventClass::Net
            } else if line.contains("\"ev\":\"fault\"")
                || line.contains("\"ev\":\"switch_fault\"")
                || line.contains("\"ev\":\"link_fault\"")
            {
                EventClass::Fault
            } else {
                EventClass::Job
            };
            by_class[match class {
                EventClass::Job => 0,
                EventClass::Fault => 1,
                EventClass::Net => 2,
            }] += 1;
        }
        t.row(vec![
            name.to_string(),
            events.to_string(),
            by_class[0].to_string(),
            by_class[1].to_string(),
            by_class[2].to_string(),
            jsonl.len().to_string(),
        ]);
        rows.push(json!({
            "scenario": name,
            "events": events,
            "job_events": by_class[0],
            "fault_events": by_class[1],
            "net_events": by_class[2],
            "trace_bytes": jsonl.len(),
            "report": serde_json::from_str::<serde_json::Value>(&report)
                .expect("report is valid JSON"),
        }));
    }

    let text = format!(
        "Observability: golden trace scenarios (jobs={jobs}, seed={}) — every \
         trace replay-stable within the run; exact bytes pinned by \
         tests/golden_trace.rs at jobs=24, seed=7\n\n{t}",
        scale.seed
    );
    ExperimentResult {
        name: "trace",
        text,
        json: json!({
            "jobs": jobs,
            "seed": scale.seed,
            "scenarios": rows,
        }),
    }
}
