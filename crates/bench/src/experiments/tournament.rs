//! Tournament — simulated annealing vs the paper's selectors.
//!
//! Not a paper artifact: this experiment measures the cost-vs-compute
//! knob the [`commsched_core::SaSelector`] adds on top of §4.3. Like the
//! paper's individual runs (§5.4), every contender places the same probe
//! jobs from the same frozen, partially-occupied cluster — continuous
//! runs would give each selector a different history and no per-placement
//! comparison. Each cell of the table3 grid (3 systems × {RHVD, RD})
//! reports the summed Eq. 6 hop-bytes cost per contender, with SA swept
//! across budgets — the cost-vs-budget curve.
//!
//! Two invariants are asserted per cell (the PR's acceptance gate):
//! * SA at any budget never exceeds the greedy cost — the incumbent is
//!   the hop-bytes minimum of greedy and balanced, and the search only
//!   replaces it with something strictly cheaper;
//! * SA at budget 0 returns the adaptive placement **bit-for-bit**.

use crate::{build_log, paper_systems, ExperimentResult, LogShape, Scale};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{
    AdaptiveSelector, AllocRequest, BalancedSelector, CostModel, GreedySelector, NodeSelector,
    PlacementEvaluator, SaBudget, SaSelector,
};
use commsched_metrics::Table;
use commsched_slurmsim::individual::{comm_probes, warmup_state};
use commsched_topology::Tree;
use commsched_workload::SystemModel;
use rayon::prelude::*;
use serde_json::json;

/// SA budgets swept per probe, in curve order. Budget 0 is the
/// bit-for-bit incumbent anchor; 256 is the acceptance-gate point.
pub const SA_BUDGETS: [u32; 4] = [0, 16, 64, 256];

/// Fraction of the machine occupied before probing, as in §5.4.
const WARMUP_FRACTION: f64 = 0.55;

/// One (system, pattern) cell's tournament outcome.
#[derive(Debug, Clone, serde::Serialize)]
struct Cell {
    /// "intrepid" | "theta" | "mira".
    system: String,
    /// "RHVD" | "RD".
    pattern: String,
    /// Probe jobs placed (comm-intensive, fitting the warm cluster).
    probes: usize,
    /// Summed Eq. 6 hop-bytes cost per contender.
    greedy: f64,
    balanced: f64,
    adaptive: f64,
    /// SA curve: summed cost per entry of [`SA_BUDGETS`].
    sa: Vec<f64>,
}

/// Place every probe under one selector from the frozen state and sum
/// the Eq. 6 hop-bytes cost of the chosen allocations.
fn score_all(
    tree: &Tree,
    state: &commsched_core::ClusterState,
    probes: &[AllocRequest],
    selector: &dyn NodeSelector,
    eval: &mut PlacementEvaluator,
) -> (f64, Vec<Vec<commsched_topology::NodeId>>) {
    let model = CostModel::HOP_BYTES;
    let mut total = 0.0;
    let mut placements = Vec::with_capacity(probes.len());
    for req in probes {
        let nodes = selector
            .select(tree, state, req)
            .expect("probes are filtered to fit the warm cluster");
        total += eval
            .evaluate(tree, state, model.trunk_discount, &nodes, &req.spec())
            .for_model(&model);
        placements.push(nodes);
    }
    (total, placements)
}

/// Run one cell: warm the cluster, place the probes under every
/// contender, check the gate invariants.
fn run_cell(system: SystemModel, tree: &Tree, pattern: Pattern, scale: Scale) -> Cell {
    let log = build_log(system, scale, 90, LogShape::Pattern(pattern));
    let state = warmup_state(tree, &log, WARMUP_FRACTION);
    let probes: Vec<AllocRequest> = comm_probes(&log, scale.jobs)
        .into_iter()
        .filter(|j| j.nodes <= state.free_total())
        .map(|j| {
            AllocRequest::comm(j.id, j.nodes).with_pattern(
                j.comm
                    .first()
                    .map(|&(p, _)| CollectiveSpec::new(p, 1 << 20))
                    .unwrap_or_else(|| CollectiveSpec::new(pattern, 1 << 20)),
            )
        })
        .collect();

    let mut eval = PlacementEvaluator::new();
    let (greedy, _) = score_all(tree, &state, &probes, &GreedySelector, &mut eval);
    let (balanced, _) = score_all(tree, &state, &probes, &BalancedSelector, &mut eval);
    let (adaptive, adaptive_nodes) = score_all(
        tree,
        &state,
        &probes,
        &AdaptiveSelector::default(),
        &mut eval,
    );
    let mut sa = Vec::with_capacity(SA_BUDGETS.len());
    for budget in SA_BUDGETS {
        let selector = SaSelector::new(SaBudget::with_evals(budget), scale.seed);
        let (cost, nodes) = score_all(tree, &state, &probes, &selector, &mut eval);
        if budget == 0 {
            // Gate: budget 0 is the adaptive incumbent, bit-for-bit.
            assert_eq!(
                nodes, adaptive_nodes,
                "{} {pattern}: sa@0 placements differ from adaptive",
                system.name
            );
        }
        // Gate: SA never exceeds greedy (incumbent = min(greedy,
        // balanced) under hop-bytes; the search only improves on it).
        assert!(
            cost <= greedy + 1e-9,
            "{} {pattern}: sa@{budget} cost {cost} exceeds greedy {greedy}",
            system.name
        );
        sa.push(cost);
    }

    Cell {
        system: system.name.to_string(),
        pattern: pattern.to_string(),
        probes: probes.len(),
        greedy,
        balanced,
        adaptive,
        sa,
    }
}

/// Run the full tournament grid.
pub fn tournament(scale: Scale) -> ExperimentResult {
    let systems = paper_systems();
    let trees: Vec<_> = systems.iter().map(|(_, preset)| preset.build()).collect();
    let grid: Vec<_> = systems
        .iter()
        .zip(&trees)
        .flat_map(|(&(system, _), tree)| {
            [Pattern::Rhvd, Pattern::Rd]
                .into_iter()
                .map(move |pattern| (system, tree, pattern))
        })
        .collect();
    // Cells are independent and collected in source order, so the output
    // is byte-identical at every thread count.
    let cells: Vec<Cell> = grid
        .par_iter()
        .map(|&(system, tree, pattern)| run_cell(system, tree, pattern, scale))
        .collect();

    let mut t = Table::new(
        ["Log", "Pattern", "Probes", "Greedy", "Balanced", "Adaptive"]
            .into_iter()
            .map(String::from)
            .chain(SA_BUDGETS.iter().map(|b| format!("SA@{b}")))
            .collect(),
    );
    for c in &cells {
        t.row(
            [
                c.system.clone(),
                c.pattern.clone(),
                c.probes.to_string(),
                format!("{:.0}", c.greedy),
                format!("{:.0}", c.balanced),
                format!("{:.0}", c.adaptive),
            ]
            .into_iter()
            .chain(c.sa.iter().map(|v| format!("{v:.0}")))
            .collect(),
        );
    }

    // The curve summary: per cell, SA's best budget vs greedy.
    let mut curve_notes = String::new();
    for c in &cells {
        let best = c.sa.last().copied().unwrap_or(c.adaptive);
        curve_notes.push_str(&format!(
            "{:>9} {:>4}: sa@{} {} vs greedy (Eq. 6 hop-bytes, summed)\n",
            c.system,
            c.pattern,
            SA_BUDGETS[SA_BUDGETS.len() - 1],
            pct(c.greedy, best),
        ));
    }

    let text = format!(
        "Tournament: annealed placement vs greedy/balanced/adaptive, frozen \
         {:.0}%-occupied clusters, {} jobs per log\n\
         (cost-vs-budget curves; sa@0 == adaptive bit-for-bit, sa@N <= greedy on \
         every cell — asserted)\n\n{t}\n{curve_notes}",
        WARMUP_FRACTION * 100.0,
        scale.jobs
    );
    ExperimentResult {
        name: "tournament",
        text,
        json: json!({
            "jobs": scale.jobs,
            "seed": scale.seed,
            "warmup_fraction": WARMUP_FRACTION,
            "sa_budgets": SA_BUDGETS.to_vec(),
            "cells": cells,
        }),
    }
}

fn pct(base: f64, cand: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", 100.0 * (base - cand) / base)
}
