//! Table 2 — the balanced allocator's power-of-two split of a 512-node
//! request over leaves with free counts 160/150/100/80/70/50/40.

use crate::{ExperimentResult, Scale};
use commsched_core::{AllocRequest, BalancedSelector, ClusterState, JobId, NodeSelector};
use commsched_metrics::Table;
use commsched_topology::Tree;
use serde_json::json;

/// Paper's free-node counts per leaf switch.
const FREE: [usize; 7] = [160, 150, 100, 80, 70, 50, 40];
/// Paper's expected allocations.
const EXPECTED: [usize; 7] = [128, 128, 64, 64, 64, 32, 32];

/// Reproduce Table 2 exactly.
pub fn table2(_scale: Scale) -> ExperimentResult {
    let tree = Tree::irregular_two_level(&FREE);
    let state = ClusterState::new(&tree);
    let nodes = BalancedSelector
        .select(&tree, &state, &AllocRequest::comm(JobId(1), 512))
        .expect("512 fits");
    let mut per_leaf = vec![0usize; tree.num_leaves()];
    for n in &nodes {
        per_leaf[tree.leaf_ordinal_of(*n)] += 1;
    }

    let mut t = Table::new(
        std::iter::once("Leaf Switch".to_string())
            .chain((1..=7).map(|k| format!("L[{k}]")))
            .collect(),
    );
    t.row(
        std::iter::once("Free Nodes".to_string())
            .chain(FREE.iter().map(|f| f.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("Allocated Nodes".to_string())
            .chain(per_leaf.iter().map(|a| a.to_string()))
            .collect(),
    );

    let matches = per_leaf == EXPECTED;
    let text = format!(
        "Table 2: balanced allocation for a job requiring 512 nodes\n\n{t}\n\
         matches paper exactly: {matches}\n"
    );
    ExperimentResult {
        name: "table2",
        text,
        json: json!({ "free": FREE, "allocated": per_leaf,
                       "expected": EXPECTED, "matches": matches }),
    }
}
