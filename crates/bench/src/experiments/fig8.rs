//! Figure 8 — communication cost (Eq. 6) by node-request range, binomial
//! pattern, 90% communication-intensive jobs, all three logs and all four
//! allocators.

use crate::{paper_systems, run_sweep, ExperimentResult, LogShape, Scale, SweepCell};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use serde_json::json;

/// One (system, node-range) group of four average costs.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Bucket {
    /// System name.
    pub system: String,
    /// Node range label ("128", "256-512", ...).
    pub range: String,
    /// Mean Eq. 6 cost per comm job, [`SelectorKind::ALL`] order.
    pub avg_cost: Vec<f64>,
    /// Comm jobs in the bucket.
    pub count: usize,
}

fn bucket_edges(max_request: usize) -> Vec<(usize, usize)> {
    // Power-of-two bands from 128 up to the system's max request.
    let mut lo = 128usize;
    let mut out = Vec::new();
    while lo <= max_request {
        let hi = (lo * 4 - 1).min(max_request);
        out.push((lo, hi));
        lo *= 4;
    }
    out
}

/// Run the Figure 8 grid.
pub fn fig8(scale: Scale) -> ExperimentResult {
    let systems = paper_systems();
    let trees: Vec<_> = systems.iter().map(|(_, preset)| preset.build()).collect();
    let cells: Vec<SweepCell> = systems
        .iter()
        .zip(&trees)
        .map(|(&(system, _), tree)| SweepCell {
            tree,
            system,
            comm_pct: 90,
            shape: LogShape::Pattern(Pattern::Binomial),
            scale,
        })
        .collect();
    // The 3 system runs fan out as 12 flat work items; bucketing the
    // outcomes afterwards is cheap and stays sequential.
    let buckets: Vec<Bucket> = run_sweep(&cells)
        .into_iter()
        .zip(&systems)
        .flat_map(|(runs, (system, _))| {
            bucket_edges(system.max_request)
                .into_iter()
                .filter_map(|(lo, hi)| {
                    let mut avg = Vec::with_capacity(runs.len());
                    let mut count = 0usize;
                    for run in &runs {
                        let costs: Vec<f64> = run
                            .outcomes
                            .iter()
                            .filter(|o| o.nature.is_comm() && o.nodes >= lo && o.nodes <= hi)
                            .map(|o| o.cost_actual)
                            .collect();
                        count = costs.len();
                        if costs.is_empty() {
                            return None;
                        }
                        avg.push(costs.iter().sum::<f64>() / costs.len() as f64);
                    }
                    Some(Bucket {
                        system: system.name.to_string(),
                        range: if lo == hi {
                            format!("{lo}")
                        } else {
                            format!("{lo}-{hi}")
                        },
                        avg_cost: avg,
                        count,
                    })
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut t = Table::new(
        ["System", "Nodes", "#jobs"]
            .into_iter()
            .map(String::from)
            .chain(SelectorKind::ALL.iter().map(|k| k.name().to_string()))
            .chain(["bal %red".to_string()])
            .collect(),
    );
    for b in &buckets {
        let red = if b.avg_cost[0] > 0.0 {
            100.0 * (b.avg_cost[0] - b.avg_cost[2]) / b.avg_cost[0]
        } else {
            0.0
        };
        t.row(
            [b.system.clone(), b.range.clone(), b.count.to_string()]
                .into_iter()
                .chain(b.avg_cost.iter().map(|c| format!("{c:.1}")))
                .chain([format!("{red:+.1}")])
                .collect(),
        );
    }

    // Aggregate reductions, the numbers §6.4 quotes (~3.4% greedy, ~11%
    // balanced/adaptive on average).
    let mut sums = [0.0f64; 4];
    let mut weight = 0.0;
    for b in &buckets {
        let w = b.count as f64;
        for (i, c) in b.avg_cost.iter().enumerate() {
            sums[i] += c * w;
        }
        weight += w;
    }
    let avg_red: Vec<f64> = (1..4)
        .map(|i| {
            if sums[0] > 0.0 {
                100.0 * (sums[0] - sums[i]) / sums[0]
            } else {
                0.0
            }
        })
        .collect();
    let _ = weight;

    let text = format!(
        "Figure 8: average communication cost (Eq. 6) by node range, binomial \
         pattern, 90% comm jobs\n\n{t}\n\
         overall cost reduction vs default: greedy {:.1}%, balanced {:.1}%, \
         adaptive {:.1}%  (paper: ~3.4% greedy, ~11% balanced/adaptive)\n",
        avg_red[0], avg_red[1], avg_red[2]
    );
    ExperimentResult {
        name: "fig8",
        text,
        json: json!({ "buckets": buckets, "overall_reduction_pct": avg_red }),
    }
}
