//! Figure 1 — interference between two communication-intensive jobs on
//! shared switches.
//!
//! The paper runs J1 (`MPI_Allgather`, 1 MB, 8 nodes as 4+4 across two
//! switches) repeatedly on its department cluster and launches J2
//! (12 nodes as 6+6 on the same switches) every 30 minutes; J1's execution
//! time spikes exactly while J2 runs. Here the cluster is the flow-level
//! simulator on the same tree shape; timescales are compressed (J2 every
//! 300 virtual seconds) but the observable — the spike pattern — is the
//! paper's.

use crate::{ExperimentResult, Scale};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_metrics::{mean, peak_to_mean};
use commsched_netsim::{FlowSim, NetConfig, Workload};
use commsched_topology::{NodeId, SystemPreset};
use serde_json::json;

/// Virtual seconds between J2 launches (the paper used 30 minutes).
const J2_PERIOD: f64 = 300.0;
/// How many J2 launches the run covers.
const J2_LAUNCHES: usize = 4;
/// Iterations folded into one reported "execution" of J1.
const ITERS_PER_EXEC: usize = 25;

/// Run the interference study and render the two series.
pub fn fig1(_scale: Scale) -> ExperimentResult {
    let tree = SystemPreset::IitkDepartment.build();
    // Department clusters run cheap, oversubscribed edge switches; the
    // backplane term is what the paper's Eq. 2 (same-leaf contention)
    // prices.
    let sim = FlowSim::new(&tree, NetConfig::cheap_ethernet());

    // Leaves 0 and 1 have 13 nodes each; J1 takes 4+4, J2 takes 6+6.
    // MPI_Allgather with 1 MB per rank gathers an 8 MB (J1) / 12 MB (J2)
    // vector.
    let leaf0 = tree.leaf_nodes(0);
    let leaf1 = tree.leaf_nodes(1);
    let j1_nodes: Vec<NodeId> = leaf0[..4].iter().chain(&leaf1[..4]).copied().collect();
    let j2_nodes: Vec<NodeId> = leaf0[4..10].iter().chain(&leaf1[4..10]).copied().collect();
    let spec = CollectiveSpec::new(Pattern::Rhvd, (j1_nodes.len() as u64) << 20);
    let j2_spec = CollectiveSpec::new(Pattern::Rhvd, (j2_nodes.len() as u64) << 20);

    // Size J1 so it iterates through the whole observation window.
    let horizon = J2_PERIOD * (J2_LAUNCHES as f64 + 1.0);
    let solo = sim.solo_time(&j1_nodes, spec).max(1e-6);
    let j1_iters = ((horizon / solo) * 1.15) as usize;

    let mut workloads = vec![Workload {
        id: 1,
        nodes: j1_nodes,
        spec,
        submit: 0.0,
        iterations: j1_iters,
    }];
    for k in 0..J2_LAUNCHES {
        workloads.push(Workload {
            id: 100 + k as u64,
            nodes: j2_nodes.clone(),
            spec: j2_spec,
            submit: J2_PERIOD * (k + 1) as f64,
            iterations: (0.25 * J2_PERIOD / solo).max(1.0) as usize,
        });
    }
    let results = sim.run(workloads);

    // Fold J1 iterations into executions; track J2 activity windows.
    let j1 = &results[0];
    let j2_windows: Vec<(f64, f64)> = results[1..].iter().map(|r| (r.submit, r.end)).collect();
    let mut series_j1: Vec<(f64, f64)> = Vec::new();
    for chunk in j1.iterations.chunks(ITERS_PER_EXEC) {
        let start = chunk[0].start;
        let dur: f64 = chunk.iter().map(|s| s.duration).sum();
        series_j1.push((start, dur));
    }
    let series_j2: Vec<(f64, f64)> = results[1..]
        .iter()
        .map(|r| (r.submit, r.end - r.submit))
        .collect();

    // Quantify the spikes: J1 executions overlapping a J2 window vs not.
    let overlaps = |t0: f64, t1: f64| j2_windows.iter().any(|&(a, b)| t0 < b && t1 > a);
    let (mut quiet, mut busy) = (Vec::new(), Vec::new());
    for &(t, d) in &series_j1 {
        if overlaps(t, t + d) {
            busy.push(d);
        } else {
            quiet.push(d);
        }
    }
    let quiet_mean = mean(&quiet);
    let busy_mean = mean(&busy);
    let spike_ratio = if quiet_mean > 0.0 {
        busy_mean / quiet_mean
    } else {
        0.0
    };

    let mut text = String::from(
        "Figure 1: J1 (8 nodes, 4+4 across two switches) execution times; \
         J2 (12 nodes, 6+6, same switches) launched periodically\n\n",
    );
    text.push_str("t(s)      J1 exec(s)   J2 active?\n");
    text.push_str("--------------------------------\n");
    for &(t, d) in &series_j1 {
        let mark = if overlaps(t, t + d) { "  <-- J2" } else { "" };
        text.push_str(&format!("{t:8.1}  {d:10.3}{mark}\n"));
    }
    text.push_str(&format!(
        "\nJ1 exec mean: quiet {quiet_mean:.3}s, while J2 active {busy_mean:.3}s \
         (slowdown x{spike_ratio:.2}; peak-to-mean {:.2})\n\
         Paper's qualitative claim: sharp spikes whenever the jobs overlap.\n",
        peak_to_mean(&series_j1.iter().map(|p| p.1).collect::<Vec<_>>())
    ));

    ExperimentResult {
        name: "fig1",
        text,
        json: json!({
            "j1_series": series_j1,
            "j2_series": series_j2,
            "quiet_mean_s": quiet_mean,
            "busy_mean_s": busy_mean,
            "slowdown": spike_ratio,
        }),
    }
}
