//! Ablations of the design choices DESIGN.md calls out — not a paper
//! artifact, but the evidence for why the reproduction is configured the
//! way it is:
//!
//! * **Backfill policy** (none / EASY / conservative): the queueing
//!   substrate the allocators sit in. The paper inherits SLURM's EASY-style
//!   backfilling; this quantifies how much of the wait-time story is
//!   backfill rather than allocation.
//! * **Eq. 7 ratio model** (raw hops vs hop-bytes): raw hops makes RHVD's
//!   cost exactly 2x RD's and the Eq. 7 ratios identical; hop-bytes (§5.3)
//!   is what differentiates the patterns.
//! * **Eq. 7 feedback on/off**: how much of the wait-time improvement is
//!   the feedback loop (shorter jobs drain queues) vs pure placement.

use crate::{build_log, ExperimentResult, LogShape, Scale};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_slurmsim::{Engine, EngineConfig};
use commsched_topology::SystemPreset;
use commsched_workload::SystemModel;
use rayon::prelude::*;
use serde_json::json;

/// Run all three ablations on the Theta log.
pub fn ablation(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();
    let logs: Vec<_> = [Pattern::Rhvd, Pattern::Rd]
        .into_par_iter()
        .map(|p| build_log(system, scale, 90, LogShape::Pattern(p)))
        .collect();
    let (log_rhvd, log_rd) = (&logs[0], &logs[1]);

    // All four ablation studies produce independent engine runs over the
    // two shared logs, so they fan out as ONE flat work list (12 runs)
    // instead of four back-to-back 2–3-item bursts. Rows are sliced back
    // out of the flat results by position.
    let backfill_cfgs = [
        (
            "fifo",
            EngineConfig::new(SelectorKind::Default).without_backfill(),
        ),
        ("easy", EngineConfig::new(SelectorKind::Default)),
        (
            "conservative",
            EngineConfig::new(SelectorKind::Default).conservative_backfill(),
        ),
    ];
    let ratio_models = [
        ("hops", commsched_core::CostModel::HOPS),
        ("hop-bytes", commsched_core::CostModel::HOP_BYTES),
    ];
    let discounts = [0.25f64, 0.5, 1.0];
    let feedback_cfgs = [
        (
            "replay",
            EngineConfig::new(SelectorKind::Balanced).without_adjustment(),
        ),
        ("eq7", EngineConfig::new(SelectorKind::Balanced)),
    ];

    let mut work: Vec<(EngineConfig, &commsched_workload::JobLog)> = Vec::new();
    // --- backfill policy sweep (default selector, pure replay) ---
    for (_, cfg) in &backfill_cfgs {
        work.push((cfg.without_adjustment(), log_rhvd));
    }
    // --- ratio model: hops vs hop-bytes, balanced selector, both logs ---
    for (_, model) in &ratio_models {
        let mut cfg = EngineConfig::new(SelectorKind::Balanced);
        cfg.ratio_model = *model;
        work.push((cfg, log_rhvd));
        work.push((cfg, log_rd));
    }
    // --- contention trunk discount: paper's 1/2 vs flat vs steep ---
    for &d in &discounts {
        let mut cfg = EngineConfig::new(SelectorKind::Adaptive);
        cfg.ratio_model = commsched_core::CostModel {
            trunk_discount: d,
            ..commsched_core::CostModel::HOP_BYTES
        };
        work.push((cfg, log_rhvd));
    }
    // --- Eq. 7 feedback on/off, balanced selector ---
    for (_, cfg) in &feedback_cfgs {
        work.push((*cfg, log_rhvd));
    }

    let runs: Vec<_> = work
        .par_iter()
        .map(|&(cfg, log)| {
            Engine::new(&tree, cfg)
                .run(log)
                .expect("log fits the Theta preset")
        })
        .collect();

    let backfill_rows: Vec<(String, f64, f64)> = backfill_cfgs
        .iter()
        .zip(&runs[0..3])
        .map(|((name, _), s)| {
            (
                name.to_string(),
                s.total_wait_hours(),
                s.avg_turnaround_hours(),
            )
        })
        .collect();
    let ratio_rows: Vec<(String, f64, f64)> = ratio_models
        .iter()
        .zip(runs[3..7].chunks(2))
        .map(|((name, _), pair)| {
            (
                name.to_string(),
                pair[0].total_exec_hours(),
                pair[1].total_exec_hours(),
            )
        })
        .collect();
    let discount_rows: Vec<(String, f64)> = discounts
        .iter()
        .zip(&runs[7..10])
        .map(|(d, s)| (format!("{d}"), s.total_exec_hours()))
        .collect();
    let feedback_rows: Vec<(String, f64, f64)> = feedback_cfgs
        .iter()
        .zip(&runs[10..12])
        .map(|((name, _), s)| (name.to_string(), s.total_exec_hours(), s.total_wait_hours()))
        .collect();

    let mut t1 = Table::new(
        ["backfill", "wait(h)", "turnaround(h)"]
            .map(String::from)
            .to_vec(),
    );
    for (n, w, tat) in &backfill_rows {
        t1.row(vec![n.clone(), format!("{w:.0}"), format!("{tat:.2}")]);
    }
    let mut t2 = Table::new(
        ["ratio model", "exec RHVD(h)", "exec RD(h)"]
            .map(String::from)
            .to_vec(),
    );
    for (n, a, b) in &ratio_rows {
        t2.row(vec![n.clone(), format!("{a:.0}"), format!("{b:.0}")]);
    }
    let mut t4 = Table::new(
        ["trunk discount", "exec(h) adaptive"]
            .map(String::from)
            .to_vec(),
    );
    for (n, e) in &discount_rows {
        t4.row(vec![n.clone(), format!("{e:.0}")]);
    }

    let mut t3 = Table::new(
        ["Eq.7 feedback", "exec(h)", "wait(h)"]
            .map(String::from)
            .to_vec(),
    );
    for (n, e, w) in &feedback_rows {
        t3.row(vec![n.clone(), format!("{e:.0}"), format!("{w:.0}")]);
    }

    let text = format!(
        "Ablations (Theta log, {} jobs)\n\n\
         1. Backfill policy (default selector, runtimes replayed):\n{t1}\n\
         2. Eq. 7 ratio model (balanced selector): raw hops cannot tell RHVD\n   from RD; hop-bytes (the §5.3 weighting) can:\n{t2}\n\
         3. Eq. 7 feedback (balanced, RHVD): placement alone changes nothing\n   in a replay; the runtime feedback is what moves exec and wait:\n{t3}\n         4. Contention trunk discount (Eq. 3's pooled-term weight; the paper\n   uses 1/2 for fat-trees, 1.0 models a skinny tree):\n{t4}",
        scale.jobs
    );
    ExperimentResult {
        name: "ablation",
        text,
        json: json!({
            "backfill": backfill_rows,
            "ratio_model": ratio_rows,
            "feedback": feedback_rows,
            "trunk_discount": discount_rows,
        }),
    }
}
