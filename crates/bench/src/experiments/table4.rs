//! Table 4 — individual runs: mean percentage improvement in execution
//! time over default, placing each probe job from an identical
//! partially-occupied cluster state (3 logs × {RHVD, RD}).

use crate::{build_log, paper_systems, ExperimentResult, LogShape, Scale};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_slurmsim::individual::{individual_runs, mean_improvement, warmup_state};
use commsched_slurmsim::EngineConfig;
use commsched_workload::JobNature;
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use serde_json::json;

/// Probes per cell (the paper samples 200 jobs).
const PROBES: usize = 200;
/// Warm-up occupancy fraction before probing.
const WARM: f64 = 0.55;

/// One (system, pattern) row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Row {
    /// System name.
    pub system: String,
    /// Pattern name.
    pub pattern: String,
    /// Mean % improvement for greedy/balanced/adaptive.
    pub improvement_pct: Vec<f64>,
    /// Probe count actually used.
    pub probes: usize,
}

/// Run the Table 4 grid.
pub fn table4(scale: Scale) -> ExperimentResult {
    let systems = paper_systems();
    let trees: Vec<_> = systems.iter().map(|(_, preset)| preset.build()).collect();
    let grid: Vec<_> = systems
        .iter()
        .zip(&trees)
        .flat_map(|(&(system, _), tree)| {
            [Pattern::Rhvd, Pattern::Rd]
                .into_iter()
                .map(move |pattern| (system, tree, pattern))
        })
        .collect();
    // Phase 1, flat and parallel: each of the six cells builds its log,
    // warms the cluster, and samples its probes.
    let prepared: Vec<_> = grid
        .par_iter()
        .map(|&(system, tree, pattern)| {
            let log = build_log(system, scale, 90, LogShape::Pattern(pattern));
            let state = warmup_state(tree, &log, WARM);
            // 200 randomly selected communication-intensive jobs that
            // fit the remaining capacity.
            let mut rng = ChaCha12Rng::seed_from_u64(scale.seed ^ 0xfeed);
            let mut comm: Vec<_> = log
                .jobs
                .iter()
                .filter(|j| j.nature == JobNature::CommIntensive && j.nodes <= state.free_total())
                .cloned()
                .collect();
            comm.shuffle(&mut rng);
            comm.truncate(PROBES.min(scale.jobs));
            (state, comm)
        })
        .collect();
    // Phase 2: cells run one after another, but each `individual_runs`
    // fans its ~200 probes across the full thread budget (chunked, with
    // per-chunk engine reuse) — far more parallel slack than six outer
    // cells would expose.
    let rows: Vec<Row> = grid
        .iter()
        .zip(prepared)
        .map(|(&(system, tree, pattern), (state, comm))| {
            let outcomes = individual_runs(
                tree,
                &state,
                &comm,
                EngineConfig::new(SelectorKind::Default),
            );
            Row {
                system: system.name.to_string(),
                pattern: pattern.to_string(),
                improvement_pct: SelectorKind::PROPOSED
                    .iter()
                    .map(|&k| mean_improvement(&outcomes, k))
                    .collect(),
                probes: outcomes.len(),
            }
        })
        .collect();

    let mut t = Table::new(
        ["Log", "Pattern"]
            .into_iter()
            .map(String::from)
            .chain(SelectorKind::PROPOSED.iter().map(|k| format!("{k} %")))
            .collect(),
    );
    for r in &rows {
        t.row(
            [r.system.clone(), r.pattern.clone()]
                .into_iter()
                .chain(r.improvement_pct.iter().map(|p| format!("{p:.2}")))
                .collect(),
        );
    }

    let text = format!(
        "Table 4: individual runs — mean %% improvement in execution time over \
         default ({} probes from an identical cluster state)\n\n{t}\n\
         Paper's shape: balanced and adaptive >= greedy >= 0 for every log.\n",
        rows.first().map(|r| r.probes).unwrap_or(0)
    );
    ExperimentResult {
        name: "table4",
        text,
        json: json!({ "rows": rows }),
    }
}
