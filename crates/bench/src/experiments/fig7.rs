//! Figure 7 — per-job execution times for the Theta log under RD, in
//! continuous runs (left panel) and individual runs (right panel), for all
//! four allocators.

use crate::{build_log, run_all_selectors, ExperimentResult, LogShape, Scale};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Series;
use commsched_slurmsim::individual::{individual_runs, warmup_state};
use commsched_slurmsim::EngineConfig;
use commsched_topology::SystemPreset;
use commsched_workload::{JobNature, SystemModel};
use serde_json::json;

/// Jobs plotted per panel (the paper plots 200).
const PLOTTED: usize = 200;

/// Run both panels.
pub fn fig7(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();
    let log = build_log(system, scale, 90, LogShape::Pattern(Pattern::Rd));

    // Left: continuous runs — exec time by job id for each selector.
    let runs = run_all_selectors(&tree, &log);
    let plot_ids: Vec<_> = log
        .jobs
        .iter()
        .map(|j| j.id)
        .take(PLOTTED.min(scale.jobs))
        .collect();
    let mut continuous: Vec<Series> = Vec::new();
    for (k, run) in SelectorKind::ALL.iter().zip(&runs) {
        let mut s = Series::new(k.name());
        for (i, id) in plot_ids.iter().enumerate() {
            if let Some(o) = run.outcome(*id) {
                s.push(i as f64, o.exec() as f64);
            }
        }
        continuous.push(s);
    }

    // Right: individual runs from a frozen state.
    let state = warmup_state(&tree, &log, 0.55);
    let probes: Vec<_> = log
        .jobs
        .iter()
        .filter(|j| j.nature == JobNature::CommIntensive && j.nodes <= state.free_total())
        .take(PLOTTED.min(scale.jobs))
        .cloned()
        .collect();
    let outcomes = individual_runs(
        &tree,
        &state,
        &probes,
        EngineConfig::new(SelectorKind::Default),
    );
    let mut individual: Vec<Series> = SelectorKind::ALL
        .iter()
        .map(|k| Series::new(k.name()))
        .collect();
    for (i, o) in outcomes.iter().enumerate() {
        for (si, k) in SelectorKind::ALL.iter().enumerate() {
            if let Some(p) = o.placements.iter().find(|p| p.selector == k.name()) {
                individual[si].push(i as f64, p.runtime_adjusted as f64);
            }
        }
    }

    // Max reductions, the numbers the paper calls out on this figure.
    let max_red = |series: &[Series]| -> f64 {
        let default = &series[0];
        let mut best: f64 = 0.0;
        for s in &series[1..] {
            for (d, c) in default.points.iter().zip(&s.points) {
                if d.1 > 0.0 {
                    best = best.max(100.0 * (d.1 - c.1) / d.1);
                }
            }
        }
        best
    };
    let max_cont = max_red(&continuous);
    let max_ind = max_red(&individual);

    let text = format!(
        "Figure 7: per-job execution times, Theta log, RD pattern\n\
         (CSV series below; x = job index, y = exec seconds)\n\n\
         -- continuous runs --\n{}\n-- individual runs --\n{}\n\
         max per-job reduction: continuous {max_cont:.0}%, individual {max_ind:.0}%\n\
         (paper: 70% and 15% for Theta)\n",
        Series::to_csv(&continuous),
        Series::to_csv(&individual),
    );
    ExperimentResult {
        name: "fig7",
        text,
        json: json!({
            "continuous": continuous.iter().map(|s| (s.name.clone(), s.points.clone())).collect::<Vec<_>>(),
            "individual": individual.iter().map(|s| (s.name.clone(), s.points.clone())).collect::<Vec<_>>(),
            "max_reduction_continuous_pct": max_cont,
            "max_reduction_individual_pct": max_ind,
        }),
    }
}
