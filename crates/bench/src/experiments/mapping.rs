//! Process-mapping extension study — the paper's §7 future work ("Process
//! mapping after node allocation can provide further improvements").
//!
//! For a sample of communication-intensive jobs placed by each allocator on
//! a warm cluster, compare the Eq. 6 cost of SLURM's block rank layout
//! against round-robin and power-of-two-aligned layouts, and against the
//! best-of-all choice.

use crate::{build_log, ExperimentResult, LogShape, Scale};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::mapping::{best_mapping, mapped_cost, MappingStrategy};
use commsched_core::{AllocRequest, CostModel, SelectorKind};
use commsched_metrics::Table;
use commsched_slurmsim::individual::warmup_state;
use commsched_topology::SystemPreset;
use commsched_workload::{JobNature, SystemModel};
use serde_json::json;

/// Probes per selector.
const PROBES: usize = 100;

/// Run the mapping study on the Theta log (RHVD, the pattern where block
/// misalignment hurts most).
pub fn mapping(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();
    let log = build_log(system, scale, 90, LogShape::Pattern(Pattern::Rhvd));
    let state = warmup_state(&tree, &log, 0.55);
    let model = CostModel::HOP_BYTES;

    let mut rows = Vec::new();
    for kind in SelectorKind::ALL {
        let selector = kind.build();
        let mut sums = [0.0f64; 4]; // block, rr, aligned, best
        let mut improved = 0usize;
        let mut count = 0usize;
        for job in log
            .jobs
            .iter()
            .filter(|j| j.nature == JobNature::CommIntensive && j.nodes <= state.free_total())
            .take(PROBES.min(scale.jobs))
        {
            let spec = CollectiveSpec::new(job.comm[0].0, 1 << 20);
            let req = AllocRequest {
                job: job.id,
                nodes: job.nodes,
                nature: job.nature,
                pattern: Some(spec),
                attempt: 0,
            };
            let Ok(nodes) = selector.select(&tree, &state, &req) else {
                continue;
            };
            let costs: Vec<f64> = MappingStrategy::ALL
                .iter()
                .map(|&s| mapped_cost(model, &tree, &state, &nodes, &spec, s))
                .collect();
            let (_, _, best) = best_mapping(model, &tree, &state, &nodes, &spec);
            sums[0] += costs[0];
            sums[1] += costs[1];
            sums[2] += costs[2];
            sums[3] += best;
            if best < costs[0] - 1e-9 {
                improved += 1;
            }
            count += 1;
        }
        if count > 0 {
            rows.push((
                kind.name().to_string(),
                sums.map(|s| s / count as f64),
                improved,
                count,
            ));
        }
    }

    let mut t = Table::new(
        [
            "allocator",
            "block",
            "round-robin",
            "aligned",
            "best",
            "jobs improved",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (name, avg, improved, count) in &rows {
        t.row(vec![
            name.clone(),
            format!("{:.2e}", avg[0]),
            format!("{:.2e}", avg[1]),
            format!("{:.2e}", avg[2]),
            format!("{:.2e}", avg[3]),
            format!("{improved}/{count}"),
        ]);
    }

    let text = format!(
        "Process mapping after allocation (future-work extension)\n\
         Theta log, RHVD, hop-bytes cost, identical warm cluster state\n\n{t}\n\
         best <= block by construction; round-robin is the adversarial\n\
         baseline. Balanced allocations are power-of-two per leaf, so block\n\
         is already aligned there and mapping mostly matters for the\n\
         default/greedy allocators' unbalanced splits.\n"
    );
    ExperimentResult {
        name: "mapping",
        text,
        json: json!({
            "rows": rows.iter().map(|(n, avg, imp, cnt)| json!({
                "allocator": n,
                "avg_cost": { "block": avg[0], "round_robin": avg[1],
                               "aligned": avg[2], "best": avg[3] },
                "improved": imp, "count": cnt,
            })).collect::<Vec<_>>(),
        }),
    }
}
