//! One module per reproduced table/figure.

mod ablation;
mod corr;
mod faults;
mod fig1;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod mapping;
mod seeds;
mod table2;
mod table3;
mod table4;
mod tournament;
mod trace;

pub use ablation::ablation;
pub use corr::corr;
pub use faults::faults;
pub use fig1::fig1;
pub use fig6::fig6;
pub use fig7::fig7;
pub use fig8::fig8;
pub use fig9::fig9;
pub use mapping::mapping;
pub use seeds::seeds;
pub use table2::table2;
pub use table3::table3;
pub use table4::table4;
pub use tournament::tournament;
pub use trace::{run_golden, trace, GOLDEN_SCENARIOS};

use crate::{ExperimentResult, Scale};

/// An experiment entry point: scale in, reproduced table/figure out.
pub type ExperimentFn = fn(Scale) -> ExperimentResult;

/// Every experiment, keyed by id, in the paper's order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", fig1 as ExperimentFn),
        ("corr", corr),
        ("table2", table2),
        ("table3", table3),
        ("fig6", fig6),
        ("table4", table4),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("ablation", ablation),
        ("mapping", mapping),
        ("seeds", seeds),
        ("faults", faults),
        ("trace", trace),
        ("tournament", tournament),
    ]
}
