//! Seed-sensitivity study — not a paper artifact, but the robustness check
//! a reproduction owes its reader: are the Table 3 conclusions an artifact
//! of one synthetic log, or stable across independently generated logs?
//!
//! Reruns the Theta × RHVD cell over several seeds and reports each
//! selector's execution/wait totals as mean ± 95% CI, plus the per-seed
//! improvement of balanced/adaptive over default.

use crate::{run_sweep, ExperimentResult, LogShape, Scale, SweepCell};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::{mean_ci95, Table};
use commsched_topology::SystemPreset;
use commsched_workload::SystemModel;
use serde_json::json;

/// Independent seeds (the first is the headline seed used everywhere else).
const SEEDS: [u64; 5] = [42, 7, 1234, 99, 2026];

/// Run the sweep.
pub fn seeds(scale: Scale) -> ExperimentResult {
    let system = SystemModel::theta();
    let tree = SystemPreset::Theta.build();

    // The 5 seed cells fan out as 20 flat (seed × selector) work items.
    let cells: Vec<SweepCell> = SEEDS
        .iter()
        .map(|&seed| SweepCell {
            tree: &tree,
            system,
            comm_pct: 90,
            shape: LogShape::Pattern(Pattern::Rhvd),
            scale: Scale { seed, ..scale },
        })
        .collect();
    // seed -> per-selector (exec hours, wait hours)
    let per_seed: Vec<(u64, Vec<(f64, f64)>)> = run_sweep(&cells)
        .into_iter()
        .zip(SEEDS)
        .map(|(runs, seed)| {
            (
                seed,
                runs.iter()
                    .map(|r| (r.total_exec_hours(), r.total_wait_hours()))
                    .collect(),
            )
        })
        .collect();

    let mut t = Table::new(
        [
            "selector",
            "exec(h) mean±95CI",
            "wait(h) mean±95CI",
            "exec %red vs default",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut json_rows = Vec::new();
    for (si, kind) in SelectorKind::ALL.iter().enumerate() {
        let execs: Vec<f64> = per_seed.iter().map(|(_, v)| v[si].0).collect();
        let waits: Vec<f64> = per_seed.iter().map(|(_, v)| v[si].1).collect();
        let reductions: Vec<f64> = per_seed
            .iter()
            .map(|(_, v)| 100.0 * (v[0].0 - v[si].0) / v[0].0)
            .collect();
        let (em, ew) = mean_ci95(&execs);
        let (wm, ww) = mean_ci95(&waits);
        let (rm, rw) = mean_ci95(&reductions);
        t.row(vec![
            kind.name().to_string(),
            format!("{em:.0} ± {ew:.0}"),
            format!("{wm:.0} ± {ww:.0}"),
            format!("{rm:.1} ± {rw:.1}"),
        ]);
        json_rows.push(json!({
            "selector": kind.name(),
            "exec_hours": execs,
            "wait_hours": waits,
            "reduction_pct": reductions,
        }));
    }

    // The claim that must survive every seed: balanced and adaptive beat
    // default on execution time.
    let robust = per_seed
        .iter()
        .all(|(_, v)| v[2].0 < v[0].0 && v[3].0 < v[0].0);

    let text = format!(
        "Seed sensitivity: Theta x RHVD, {} jobs, seeds {:?}\n\n{t}\n\
         balanced & adaptive beat default on every seed: {robust}\n",
        scale.jobs, SEEDS
    );
    ExperimentResult {
        name: "seeds",
        text,
        json: json!({ "seeds": SEEDS, "rows": json_rows, "robust": robust }),
    }
}
