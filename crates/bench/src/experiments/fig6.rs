//! Figure 6 — percentage reduction in execution time for the §6.2
//! experiment sets A–E on the Theta log (with the Intrepid/Mira numbers the
//! text quotes included in the JSON).

use crate::{run_sweep, ExperimentResult, LogShape, Scale, SweepCell};
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_topology::SystemPreset;
use commsched_workload::{MixSet, SystemModel};
use serde_json::json;

/// One (system, mix) row: % exec-time reduction per proposed selector.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MixRow {
    /// System name.
    pub system: String,
    /// Experiment set label A–E.
    pub set: String,
    /// % reduction vs default for greedy/balanced/adaptive.
    pub reduction_pct: Vec<f64>,
}

/// Run the A–E sweep.
pub fn fig6(scale: Scale) -> ExperimentResult {
    let systems = [
        (SystemModel::theta(), SystemPreset::Theta),
        (SystemModel::intrepid(), SystemPreset::Intrepid),
        (SystemModel::mira(), SystemPreset::Mira),
    ];
    // One tree per system, shared by its five mix cells; the 3×5 grid is
    // a single flat work list (systems-major, like the output rows).
    let trees: Vec<_> = systems.iter().map(|(_, preset)| preset.build()).collect();
    let cells: Vec<SweepCell> = systems
        .iter()
        .zip(&trees)
        .flat_map(|(&(system, _), tree)| {
            MixSet::ALL.into_iter().map(move |set| SweepCell {
                tree,
                system,
                comm_pct: 90,
                shape: LogShape::Mix(set),
                scale,
            })
        })
        .collect();
    let sets = systems
        .iter()
        .flat_map(|(system, _)| MixSet::ALL.into_iter().map(move |set| (system, set)));
    let rows: Vec<MixRow> = run_sweep(&cells)
        .into_iter()
        .zip(sets)
        .map(|(runs, (system, set))| {
            let d = runs[0].total_exec_hours();
            let reduction_pct = runs[1..]
                .iter()
                .map(|r| {
                    if d == 0.0 {
                        0.0
                    } else {
                        100.0 * (d - r.total_exec_hours()) / d
                    }
                })
                .collect();
            MixRow {
                system: system.name.to_string(),
                set: set.label().to_string(),
                reduction_pct,
            }
        })
        .collect();

    let mut t = Table::new(
        ["System", "Set"]
            .into_iter()
            .map(String::from)
            .chain(SelectorKind::PROPOSED.iter().map(|k| format!("{k} %red")))
            .collect(),
    );
    for r in rows.iter().filter(|r| r.system == "theta") {
        t.row(
            [r.system.clone(), r.set.clone()]
                .into_iter()
                .chain(r.reduction_pct.iter().map(|p| format!("{p:.2}")))
                .collect(),
        );
    }

    // The paper's headline shape: gains grow with communication ratio
    // (A -> C and D -> E) and RHVD-heavy B beats D at equal ratio.
    let theta: Vec<&MixRow> = rows.iter().filter(|r| r.system == "theta").collect();
    let avg = |set: &str| -> f64 {
        let r = theta.iter().find(|r| r.set == set).unwrap();
        r.reduction_pct.iter().sum::<f64>() / r.reduction_pct.len() as f64
    };
    let shape = format!(
        "Theta avg reductions: A {:.2}% <= B {:.2}% <= C {:.2}% (comm ratio up => gains up); \
         B {:.2}% vs D {:.2}% (RHVD gains more at equal ratio); D {:.2}% <= E {:.2}%\n",
        avg("A"),
        avg("B"),
        avg("C"),
        avg("B"),
        avg("D"),
        avg("D"),
        avg("E"),
    );

    let text = format!(
        "Figure 6: % reduction in execution time, experiment sets A-E (Theta shown; \
         Intrepid/Mira in JSON)\n\
         A: 67%c+33%RHVD  B: 50/50 RHVD  C: 30/70 RHVD  \
         D: 50%c+15%RD+35%Bin  E: 30%c+21%RD+49%Bin\n\n{t}\n{shape}"
    );
    ExperimentResult {
        name: "fig6",
        text,
        json: json!({ "jobs": scale.jobs, "rows": rows }),
    }
}
