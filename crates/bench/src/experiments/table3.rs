//! Table 3 — continuous runs: total execution and wait hours for the three
//! job logs × {RHVD, RD} × {default, greedy, balanced, adaptive}, with 90%
//! communication-intensive jobs.

use crate::{paper_systems, run_sweep, ExperimentResult, LogShape, Scale, SweepCell};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use serde_json::json;

/// One (system, pattern) cell's eight numbers.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Cell {
    /// "intrepid" | "theta" | "mira".
    pub system: String,
    /// "RHVD" | "RD".
    pub pattern: String,
    /// Total execution hours in [`SelectorKind::ALL`] order.
    pub exec_hours: Vec<f64>,
    /// Total wait hours in the same order.
    pub wait_hours: Vec<f64>,
}

/// Run the full Table 3 grid.
pub fn table3(scale: Scale) -> ExperimentResult {
    let systems = paper_systems();
    let trees: Vec<_> = systems.iter().map(|(_, preset)| preset.build()).collect();
    // The 3×2 grid as one flat work list (systems-major, matching rows).
    let grid: Vec<_> = systems
        .iter()
        .zip(&trees)
        .flat_map(|(&(system, _), tree)| {
            [Pattern::Rhvd, Pattern::Rd]
                .into_iter()
                .map(move |pattern| (system, tree, pattern))
        })
        .collect();
    let sweep_cells: Vec<SweepCell> = grid
        .iter()
        .map(|&(system, tree, pattern)| SweepCell {
            tree,
            system,
            comm_pct: 90,
            shape: LogShape::Pattern(pattern),
            scale,
        })
        .collect();
    let cells: Vec<Cell> = run_sweep(&sweep_cells)
        .into_iter()
        .zip(&grid)
        .map(|(runs, (system, _, pattern))| Cell {
            system: system.name.to_string(),
            pattern: pattern.to_string(),
            exec_hours: runs.iter().map(|r| r.total_exec_hours()).collect(),
            wait_hours: runs.iter().map(|r| r.total_wait_hours()).collect(),
        })
        .collect();

    let mut t = Table::new(
        ["Log", "Pattern"]
            .into_iter()
            .map(String::from)
            .chain(SelectorKind::ALL.iter().map(|k| format!("Exec:{k}")))
            .chain(SelectorKind::ALL.iter().map(|k| format!("Wait:{k}")))
            .collect(),
    );
    for c in &cells {
        t.row(
            [c.system.clone(), c.pattern.clone()]
                .into_iter()
                .chain(c.exec_hours.iter().map(|h| format!("{h:.0}")))
                .chain(c.wait_hours.iter().map(|h| format!("{h:.0}")))
                .collect(),
        );
    }

    // Shape checks the paper emphasizes: balanced/adaptive beat default on
    // execution time for every log and pattern.
    let mut shape_notes = String::new();
    for c in &cells {
        let d = c.exec_hours[0];
        let b = c.exec_hours[2];
        let a = c.exec_hours[3];
        shape_notes.push_str(&format!(
            "{:>9} {:>4}: balanced {}, adaptive {} vs default (exec)\n",
            c.system,
            c.pattern,
            pct(d, b),
            pct(d, a),
        ));
    }

    let text = format!(
        "Table 3: execution and wait times (hours), continuous runs, 90% comm jobs\n\
         ({} jobs per log)\n\n{t}\n{shape_notes}",
        scale.jobs
    );
    ExperimentResult {
        name: "table3",
        text,
        json: json!({ "jobs": scale.jobs, "selectors": selector_names(), "cells": cells }),
    }
}

fn pct(base: f64, cand: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", 100.0 * (base - cand) / base)
}

fn selector_names() -> Vec<&'static str> {
    SelectorKind::ALL.iter().map(|k| k.name()).collect()
}
