//! §5.3 validation — the paper reports a Pearson correlation of 0.83
//! between its contention values (Eqs. 2–3) and measured execution times.
//!
//! We regenerate the check against the flow simulator: many random
//! two-job placements on the department-cluster tree; for each, the probe
//! job's measured collective time (under interference) is paired with its
//! Eq. 6 cost evaluated from the same occupancy.

use crate::{ExperimentResult, Scale};
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{ClusterState, CostModel, JobId, JobNature};
use commsched_metrics::pearson;
use commsched_netsim::{FlowSim, NetConfig, Workload};
use commsched_topology::{NodeId, SystemPreset};
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;
use serde_json::json;

/// Run the correlation study over `scale.jobs.min(300)` random scenarios,
/// once per network model (non-blocking switches, and the oversubscribed
/// `cheap_ethernet` whose backplane is the physical counterpart of Eq. 2's
/// same-leaf contention term).
pub fn corr(scale: Scale) -> ExperimentResult {
    let tree = SystemPreset::IitkDepartment.build();
    let configs = [
        ("non-blocking", NetConfig::gigabit_ethernet()),
        ("oversubscribed", NetConfig::cheap_ethernet()),
    ];
    let mut lines = String::new();
    let mut json_runs = Vec::new();
    for (label, cfg) in configs {
        let (r, scenarios, costs, times) = correlate(&tree, cfg, scale);
        lines.push_str(&format!(
            "  {label:<14} r = {r:.3} over {scenarios} scenarios\n"
        ));
        json_runs.push(json!({
            "config": label, "scenarios": scenarios, "pearson_r": r,
            "costs": costs, "times": times,
        }));
    }
    let text = format!(
        "Section 5.3 validation: contention-aware cost (Eq. 6) vs measured time\n\n{lines}\n         (paper reports r = 0.83 on its hardware study)\n"
    );
    ExperimentResult {
        name: "corr",
        text,
        json: json!({ "paper_r": 0.83, "runs": json_runs }),
    }
}

fn correlate(
    tree: &commsched_topology::Tree,
    cfg: NetConfig,
    scale: Scale,
) -> (f64, usize, Vec<f64>, Vec<f64>) {
    let sim = FlowSim::new(tree, cfg);
    let model = CostModel::HOPS;
    let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
    let scenarios = scale.jobs.clamp(50, 300);
    let mut rng = ChaCha12Rng::seed_from_u64(scale.seed);

    let mut costs = Vec::with_capacity(scenarios);
    let mut times = Vec::with_capacity(scenarios);

    for _ in 0..scenarios {
        // Probe job: 8 nodes over 1 or 2 leaves; interferer: 4-12 nodes
        // somewhere random. Node sets are disjoint.
        let mut nodes: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
        nodes.shuffle(&mut rng);
        let split: bool = rng.random();
        let probe: Vec<NodeId> = if split {
            // 4 + 4 across the two busiest leaves.
            let l0 = tree.leaf_nodes(0);
            let l1 = tree.leaf_nodes(1);
            l0[..4].iter().chain(&l1[..4]).copied().collect()
        } else {
            tree.leaf_nodes(rng.random_range(0..tree.num_leaves()))[..8].to_vec()
        };
        let mut pool: Vec<NodeId> = nodes.into_iter().filter(|n| !probe.contains(n)).collect();
        let interferer: Vec<NodeId> = pool.drain(..rng.random_range(4usize..=12)).collect();

        // Eq. 6 cost from the occupancy both jobs create.
        let mut state = ClusterState::new(tree);
        state
            .allocate(tree, JobId(1), &probe, JobNature::CommIntensive)
            .unwrap();
        state
            .allocate(tree, JobId(2), &interferer, JobNature::CommIntensive)
            .unwrap();
        let cost = model.job_cost(tree, &state, &probe, &spec);

        // Measured time of one probe collective while the interferer is
        // mid-flight through its own collective stream.
        let res = sim.run(vec![
            Workload {
                id: 1,
                nodes: probe,
                spec,
                submit: 0.05,
                iterations: 3,
            },
            Workload {
                id: 2,
                nodes: interferer,
                spec,
                submit: 0.0,
                iterations: 40,
            },
        ]);
        costs.push(cost);
        times.push(res[0].end - res[0].submit);
    }

    let r = pearson(&costs, &times);
    (r, scenarios, costs, times)
}
