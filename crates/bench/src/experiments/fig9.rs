//! Figure 9 — average turnaround time and node-hours for the Intrepid log
//! (RHVD) as the percentage of communication-intensive jobs varies over
//! 30 / 60 / 90, for all four allocators.

use crate::{run_sweep, ExperimentResult, LogShape, Scale, SweepCell};
use commsched_collectives::Pattern;
use commsched_core::SelectorKind;
use commsched_metrics::Table;
use commsched_topology::SystemPreset;
use commsched_workload::SystemModel;
use serde_json::json;

/// One %comm level's eight numbers.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Level {
    /// 30 / 60 / 90.
    pub comm_pct: u8,
    /// Mean turnaround hours per selector ([`SelectorKind::ALL`] order).
    pub turnaround_h: Vec<f64>,
    /// Mean node-hours per job per selector.
    pub node_hours: Vec<f64>,
    /// Throughput (jobs/hour of makespan) per selector.
    pub throughput: Vec<f64>,
}

/// Run the Figure 9 sweep.
pub fn fig9(scale: Scale) -> ExperimentResult {
    let system = SystemModel::intrepid();
    let tree = SystemPreset::Intrepid.build();
    const LEVELS: [u8; 3] = [30, 60, 90];
    let cells: Vec<SweepCell> = LEVELS
        .into_iter()
        .map(|pct| SweepCell {
            tree: &tree,
            system,
            comm_pct: pct,
            shape: LogShape::Pattern(Pattern::Rhvd),
            scale,
        })
        .collect();
    let levels: Vec<Level> = run_sweep(&cells)
        .into_iter()
        .zip(LEVELS)
        .map(|(runs, pct)| Level {
            comm_pct: pct,
            turnaround_h: runs.iter().map(|r| r.avg_turnaround_hours()).collect(),
            node_hours: runs.iter().map(|r| r.avg_node_hours()).collect(),
            throughput: runs.iter().map(|r| r.throughput()).collect(),
        })
        .collect();

    let mut t = Table::new(
        ["%comm"]
            .into_iter()
            .map(String::from)
            .chain(SelectorKind::ALL.iter().map(|k| format!("TAT:{k}")))
            .chain(SelectorKind::ALL.iter().map(|k| format!("NH:{k}")))
            .collect(),
    );
    for l in &levels {
        t.row(
            [l.comm_pct.to_string()]
                .into_iter()
                .chain(l.turnaround_h.iter().map(|h| format!("{h:.2}")))
                .chain(l.node_hours.iter().map(|h| format!("{h:.1}")))
                .collect(),
        );
    }

    // Shape: adaptive's improvement grows with %comm.
    let imp = |l: &Level| {
        if l.turnaround_h[0] == 0.0 {
            0.0
        } else {
            100.0 * (l.turnaround_h[0] - l.turnaround_h[3]) / l.turnaround_h[0]
        }
    };
    let shape = format!(
        "adaptive turnaround improvement: 30% comm -> {:.2}%, 60% -> {:.2}%, 90% -> {:.2}% \
         (paper: 2.55% at 30% rising to 11.10% at 90%)\n",
        imp(&levels[0]),
        imp(&levels[1]),
        imp(&levels[2]),
    );

    let text = format!(
        "Figure 9: Intrepid, RHVD — average turnaround (hours) and node-hours \
         per job vs %% of communication-intensive jobs\n\n{t}\n{shape}"
    );
    ExperimentResult {
        name: "fig9",
        text,
        json: json!({ "levels": levels }),
    }
}
