//! Fast-vs-naive measured units behind the `BENCH_*.json` runners and the
//! Criterion benches: placement evaluation (`BENCH_engine.json`) and
//! flow-level network simulation (`BENCH_netsim.json`).
//!
//! The "naive" path retains the pre-optimization pipeline, built from the
//! public APIs that still implement it: a clone-based adaptive decision
//! (full `ClusterState` clone + `allocate` + one `job_cost` traversal per
//! candidate) and a clone-based Eq. 6/Eq. 7 evaluation (two more clones,
//! four `job_cost` traversals per collective component). The "fast" path
//! is the production pipeline: the shared [`PlacementEvaluator`] — no
//! clones, one fused traversal per component per allocation, hop memo
//! reused across the job's components.
//!
//! Both return identical numbers (the equivalence is also property-tested
//! in `commsched-core`), so the comparison isolates the cost of the
//! evaluation strategy alone.

use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{
    AdaptiveSelector, AllocRequest, BalancedSelector, ClusterState, CostModel, DefaultTreeSelector,
    GreedySelector, JobId, JobNature, NodeSelector, PlacementEvaluator,
};
use commsched_netsim::{FlowSim, JobResult, NetConfig, SolverKind, Workload};
use commsched_topology::{NodeId, SystemPreset, Tree};
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;

/// Eq. 6/Eq. 7 numbers of one placement, for cross-checking the two paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementNumbers {
    /// Reported Eq. 6 cost (raw hops) of the chosen allocation.
    pub cost_actual: f64,
    /// Eq. 6 cost of the default allocation from the same state.
    pub cost_default: f64,
    /// Eq. 7-adjusted runtime, seconds (pre-rounding).
    pub adjusted: f64,
}

/// One benchmark scenario: a half-occupied system and a probe job.
pub struct PlacementCase {
    pub tree: Tree,
    pub state: ClusterState,
    /// Probe request size (nodes).
    pub want: usize,
    /// The probe's collective components (pattern, runtime fraction).
    pub comm: Vec<(Pattern, f64)>,
    /// Probe runtime, seconds.
    pub runtime: f64,
    /// Base message size for cost evaluation.
    pub msize: u64,
}

impl PlacementCase {
    /// Deterministic half-occupied cluster on `preset` with a `want`-node
    /// communication-intensive probe (the selectors-bench scenario).
    pub fn new(preset: SystemPreset, want: usize) -> Self {
        let tree = preset.build();
        let mut state = ClusterState::new(&tree);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut nodes: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
        nodes.shuffle(&mut rng);
        for (job, chunk) in nodes[..tree.num_nodes() / 2].chunks(512).enumerate() {
            let nature = if job.is_multiple_of(2) {
                JobNature::CommIntensive
            } else {
                JobNature::ComputeIntensive
            };
            state
                .allocate(&tree, JobId(job as u64), chunk, nature)
                .unwrap();
        }
        PlacementCase {
            tree,
            state,
            want,
            comm: vec![(Pattern::Rhvd, 0.3), (Pattern::Rd, 0.2)],
            runtime: 10_000.0,
            msize: 1 << 20,
        }
    }

    fn request(&self) -> AllocRequest {
        self.request_of(self.want)
    }

    fn request_of(&self, want: usize) -> AllocRequest {
        AllocRequest::comm(JobId(999_999), want)
            .with_pattern(CollectiveSpec::new(self.comm[0].0, self.msize))
    }

    /// Pure selection through the production (free-count-index) path: the
    /// three direct selectors back to back. Returns the three placements
    /// so the caller can cross-check them against [`Self::select_scan`].
    pub fn select_indexed(&self, want: usize) -> Vec<Vec<NodeId>> {
        let req = self.request_of(want);
        vec![
            DefaultTreeSelector
                .select(&self.tree, &self.state, &req)
                .unwrap(),
            GreedySelector
                .select(&self.tree, &self.state, &req)
                .unwrap(),
            BalancedSelector
                .select(&self.tree, &self.state, &req)
                .unwrap(),
        ]
    }

    /// The same three selections through the retained linear-scan
    /// baselines (`commsched_core::select_scan`) — the pre-index
    /// algorithms, O(cluster size) per placement.
    pub fn select_scan(&self, want: usize) -> Vec<Vec<NodeId>> {
        use commsched_core::select_scan as scan;
        let req = self.request_of(want);
        vec![
            scan::default_select(&self.tree, &self.state, &req).unwrap(),
            scan::greedy_select(&self.tree, &self.state, &req).unwrap(),
            scan::balanced_select(&self.tree, &self.state, &req).unwrap(),
        ]
    }

    /// One full annealed search over the case's probe request through the
    /// shared evaluator: the `sa_evals_per_sec` measured unit. Returns the
    /// search stats; `None` means the search returned the incumbent
    /// without ever entering the annealing loop (zero budget, compute
    /// probe, or a single candidate leaf).
    pub fn run_sa(
        &self,
        budget: u32,
        seed: u64,
        eval: &std::sync::Arc<std::sync::Mutex<PlacementEvaluator>>,
    ) -> Option<commsched_core::SaStats> {
        let selector = commsched_core::SaSelector::with_evaluator(
            CostModel::HOP_BYTES,
            commsched_core::SaBudget::with_evals(budget),
            seed,
            eval.clone(),
        );
        let (_, stats) = commsched_core::sa_search_with_stats(
            &selector,
            &self.tree,
            &self.state,
            &self.request(),
        )
        .unwrap();
        stats
    }

    fn comm_fraction(&self) -> f64 {
        self.comm.iter().map(|&(_, f)| f).sum()
    }

    /// The pre-optimization pipeline: clone-based adaptive decision, then
    /// clone-based Eq. 6/Eq. 7 evaluation with four `job_cost` traversals
    /// per component.
    pub fn place_naive(&self) -> PlacementNumbers {
        let req = self.request();
        let spec = req.spec();
        let decide = CostModel::HOP_BYTES;

        // §4.3 adaptive decision, clone-based (the seed's
        // `hypothetical_cost`): full state copy + real allocation per
        // candidate.
        let greedy = GreedySelector
            .select(&self.tree, &self.state, &req)
            .unwrap();
        let balanced = BalancedSelector
            .select(&self.tree, &self.state, &req)
            .unwrap();
        let nodes = if greedy == balanced {
            balanced
        } else {
            let cost_of = |alloc: &[NodeId]| {
                let mut s = self.state.clone();
                s.allocate(&self.tree, JobId(u64::MAX), alloc, JobNature::CommIntensive)
                    .unwrap();
                decide.job_cost(&self.tree, &s, alloc, &spec)
            };
            let cg = cost_of(&greedy);
            let cb = cost_of(&balanced);
            if cb <= cg {
                balanced
            } else {
                greedy
            }
        };
        let default_nodes = DefaultTreeSelector
            .select(&self.tree, &self.state, &req)
            .unwrap();

        // Eq. 6/Eq. 7: one what-if clone per allocation, four traversals
        // per component (reported + ratio model, actual + default).
        let what_if = |alloc: &[NodeId]| {
            let mut s = self.state.clone();
            s.allocate(&self.tree, JobId(u64::MAX), alloc, JobNature::CommIntensive)
                .unwrap();
            s
        };
        let state_actual = what_if(&nodes);
        let state_default = what_if(&default_nodes);
        let mut cost_actual = 0.0;
        let mut cost_default = 0.0;
        let mut adjusted = self.runtime * (1.0 - self.comm_fraction());
        for &(pattern, fraction) in &self.comm {
            let spec = CollectiveSpec::new(pattern, self.msize);
            cost_actual += CostModel::HOPS.job_cost(&self.tree, &state_actual, &nodes, &spec);
            cost_default +=
                CostModel::HOPS.job_cost(&self.tree, &state_default, &default_nodes, &spec);
            let ca = CostModel::HOP_BYTES.job_cost(&self.tree, &state_actual, &nodes, &spec);
            let cd =
                CostModel::HOP_BYTES.job_cost(&self.tree, &state_default, &default_nodes, &spec);
            let ratio = if cd > 0.0 { ca / cd } else { 1.0 };
            adjusted += self.runtime * fraction * ratio;
        }
        PlacementNumbers {
            cost_actual,
            cost_default,
            adjusted,
        }
    }

    /// The production pipeline: evaluator-backed adaptive decision and one
    /// fused traversal per component per allocation, no state clones.
    pub fn place_fast(
        &self,
        eval: &std::sync::Arc<std::sync::Mutex<PlacementEvaluator>>,
    ) -> PlacementNumbers {
        let req = self.request();
        let selector = AdaptiveSelector::with_evaluator(CostModel::HOP_BYTES, eval.clone());
        let nodes = selector.select(&self.tree, &self.state, &req).unwrap();
        let default_nodes = DefaultTreeSelector
            .select(&self.tree, &self.state, &req)
            .unwrap();

        let discount = CostModel::HOPS.trunk_discount;
        let mut ev = eval.lock().unwrap();
        let mut eval_all = |alloc: &[NodeId]| -> Vec<(f64, f64)> {
            self.comm
                .iter()
                .map(|&(pattern, _)| {
                    let spec = CollectiveSpec::new(pattern, self.msize);
                    let t = ev.evaluate(&self.tree, &self.state, discount, alloc, &spec);
                    (t.raw_hops, t.hop_bytes)
                })
                .collect()
        };
        let actual = eval_all(&nodes);
        let default = eval_all(&default_nodes);
        drop(ev);

        let mut cost_actual = 0.0;
        let mut cost_default = 0.0;
        let mut adjusted = self.runtime * (1.0 - self.comm_fraction());
        for (i, &(_, fraction)) in self.comm.iter().enumerate() {
            cost_actual += actual[i].0;
            cost_default += default[i].0;
            let (ca, cd) = (actual[i].1, default[i].1);
            let ratio = if cd > 0.0 { ca / cd } else { 1.0 };
            adjusted += self.runtime * fraction * ratio;
        }
        PlacementNumbers {
            cost_actual,
            cost_default,
            adjusted,
        }
    }
}

/// One netsim benchmark scenario: a topology plus a workload set, run with
/// the incremental (fast) or the retained naive rate solver of the same
/// binary.
pub struct NetsimCase {
    pub name: &'static str,
    pub tree: Tree,
    pub cfg: NetConfig,
    pub workloads: Vec<Workload>,
}

impl NetsimCase {
    /// Steady state: a few machine-spanning collectives iterating together
    /// — few events, but each solve sees one large coupled component, so
    /// this bounds the incremental solver's worst case.
    pub fn steady_state() -> Self {
        let tree = Tree::regular_two_level(8, 32);
        let n = tree.num_nodes();
        let workloads = (0..4u64)
            .map(|k| {
                let stride = 4;
                let nodes: Vec<NodeId> = (0..32)
                    .map(|i| NodeId(((k as usize) + stride * i + (i / 8) * 37) % n))
                    .collect();
                Workload {
                    id: k + 1,
                    nodes,
                    spec: CollectiveSpec::new(Pattern::Rhvd, 1 << 19),
                    submit: 0.002 * k as f64,
                    iterations: 6,
                }
            })
            .collect();
        NetsimCase {
            name: "steady_state",
            tree,
            cfg: NetConfig::gigabit_ethernet(),
            workloads,
        }
    }

    /// Churn: many short two-node exchanges arriving and finishing all over
    /// a 2,048-node machine. Every event touches a tiny component, which is
    /// exactly what the dirty-link frontier exploits; the naive solver
    /// pays the full O(links × flows) fixpoint per event regardless.
    pub fn churn() -> Self {
        let tree = Tree::regular_two_level(64, 32);
        let n = tree.num_nodes();
        let workloads = (0..128u64)
            .map(|k| {
                let a = (k as usize * 53) % n;
                let b = (a + 7 + (k as usize % 11)) % n;
                Workload {
                    id: k + 1,
                    nodes: vec![NodeId(a), NodeId(b)],
                    spec: CollectiveSpec::new(Pattern::Rd, 100_000 + 9_001 * k),
                    submit: 0.0007 * k as f64,
                    iterations: 8,
                }
            })
            .collect();
        NetsimCase {
            name: "churn",
            tree,
            cfg: NetConfig::cheap_ethernet(),
            workloads,
        }
    }

    fn run_with(&self, solver: SolverKind) -> Vec<JobResult> {
        FlowSim::new(&self.tree, self.cfg)
            .with_solver(solver)
            .run(self.workloads.clone())
    }

    /// Run under the incremental (default) solver.
    pub fn run_fast(&self) -> Vec<JobResult> {
        self.run_with(SolverKind::Incremental)
    }

    /// Run under the retained naive fixpoint solver.
    pub fn run_naive(&self) -> Vec<JobResult> {
        self.run_with(SolverKind::Naive)
    }
}
