//! The reproduction harness: one module per table/figure in the paper's
//! evaluation (§6), plus the §5.3 correlation check.
//!
//! Each experiment produces an [`ExperimentResult`]: a human-readable text
//! block shaped like the paper's table/figure, and a JSON value with the
//! raw numbers, written side by side by the `repro` binary.
//!
//! | id        | paper artifact                                            |
//! |-----------|-----------------------------------------------------------|
//! | `fig1`    | Figure 1 — two-job interference on shared switches        |
//! | `corr`    | §5.3 — contention factor vs measured time correlation     |
//! | `table2`  | Table 2 — balanced split of a 512-node request            |
//! | `table3`  | Table 3 — exec/wait hours, 3 logs × RHVD/RD × 4 selectors |
//! | `fig6`    | Figure 6 — % exec reduction for mixes A–E (Theta)         |
//! | `table4`  | Table 4 — individual runs, mean % improvement             |
//! | `fig7`    | Figure 7 — continuous vs individual per-job exec times    |
//! | `fig8`    | Figure 8 — comm cost by node range (binomial)             |
//! | `fig9`    | Figure 9 — turnaround & node-hours vs %comm (Intrepid)    |
//!
//! Experiments are deterministic per [`Scale`] (fixed seeds) and sized by
//! `Scale::jobs` so the same code drives both quick CI runs and the full
//! 1000-job replication.

#![forbid(unsafe_code)]
pub mod baseline;
pub mod experiments;
pub mod perf;

use commsched_core::SelectorKind;
use commsched_slurmsim::{Engine, EngineConfig, RunSummary};
use commsched_topology::{SystemPreset, Tree};
use commsched_workload::{JobLog, LogSpec, MixSet, SystemModel};
use rayon::prelude::*;

/// Experiment sizing: number of jobs per log and the RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Jobs per log (the paper uses 1000).
    pub jobs: usize,
    /// Base seed; every log derives its own stream from it.
    pub seed: u64,
}

impl Scale {
    /// The paper's scale: 1000 jobs per log.
    pub fn paper() -> Self {
        Scale {
            jobs: 1000,
            seed: 42,
        }
    }

    /// A fast scale for tests and smoke runs.
    pub fn quick() -> Self {
        Scale {
            jobs: 150,
            seed: 42,
        }
    }
}

/// A rendered experiment: text like the paper's artifact plus raw JSON.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id ("table3", "fig6", ...).
    pub name: &'static str,
    /// Human-readable rendering.
    pub text: String,
    /// Raw numbers for EXPERIMENTS.md bookkeeping.
    pub json: serde_json::Value,
}

/// The three evaluation systems with their topologies, in paper order.
pub fn paper_systems() -> Vec<(SystemModel, SystemPreset)> {
    vec![
        (SystemModel::intrepid(), SystemPreset::Intrepid),
        (SystemModel::theta(), SystemPreset::Theta),
        (SystemModel::mira(), SystemPreset::Mira),
    ]
}

/// Run one log under all four selectors (in parallel) and return the
/// summaries in [`SelectorKind::ALL`] order.
pub fn run_all_selectors(tree: &Tree, log: &JobLog) -> Vec<RunSummary> {
    SelectorKind::ALL
        .par_iter()
        .map(|&kind| {
            Engine::new(tree, EngineConfig::new(kind))
                .run(log)
                .expect("log fits the preset topology")
        })
        .collect()
}

/// One cell of a sweep grid: a system and log shape to replay on a
/// topology. Cells carry everything [`run_sweep`] needs to build the
/// cell's log and run it under every selector.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell<'t> {
    /// The topology to schedule on (built once per system, shared across
    /// the system's cells).
    pub tree: &'t Tree,
    /// The system whose workload model shapes the log.
    pub system: SystemModel,
    /// Percentage of communication-intensive jobs.
    pub comm_pct: u8,
    /// Collective pattern or mix set.
    pub shape: LogShape,
    /// Log sizing and seed.
    pub scale: Scale,
}

/// Run a grid of sweep cells under all four selectors as one **flat**
/// parallel work list, returning each cell's summaries in
/// [`SelectorKind::ALL`] order.
///
/// Two phases, both flat: first every cell's log is generated in
/// parallel (once per cell — the four selector runs share it), then the
/// full `cells × selectors` product fans out as independent work items.
/// A 15-cell grid thus exposes 60 parallel items instead of the 3–5 an
/// outer-level `par_iter` with nested (flattened) inner calls would, so
/// wide hosts stay busy across uneven cell costs. Work items land back
/// in `(cell, selector)` source order, so the output is byte-identical
/// at every thread count.
pub fn run_sweep(cells: &[SweepCell<'_>]) -> Vec<Vec<RunSummary>> {
    let logs: Vec<JobLog> = cells
        .par_iter()
        .map(|c| build_log(c.system, c.scale, c.comm_pct, c.shape))
        .collect();
    let work: Vec<(usize, SelectorKind)> = (0..cells.len())
        .flat_map(|i| SelectorKind::ALL.iter().map(move |&k| (i, k)))
        .collect();
    let flat: Vec<RunSummary> = work
        .par_iter()
        .map(|&(i, kind)| {
            Engine::new(cells[i].tree, EngineConfig::new(kind))
                .run(&logs[i])
                .expect("log fits the preset topology")
        })
        .collect();
    let mut grouped: Vec<Vec<RunSummary>> = Vec::with_capacity(cells.len());
    let mut flat = flat.into_iter();
    for _ in 0..cells.len() {
        grouped.push(flat.by_ref().take(SelectorKind::ALL.len()).collect());
    }
    grouped
}

/// Build the synthetic log for a (system, pattern/mix) cell.
pub fn build_log(system: SystemModel, scale: Scale, comm_pct: u8, shape: LogShape) -> JobLog {
    let spec = LogSpec::new(system, scale.jobs, scale.seed).comm_percent(comm_pct);
    let spec = match shape {
        LogShape::Pattern(p) => spec.pattern(p).comm_fraction(0.5),
        LogShape::Mix(m) => spec.mix(m),
    };
    spec.generate()
}

/// Either a uniform collective pattern at 50% communication (Table 3,
/// Figures 7–9) or one of the §6.2 experiment sets (Figure 6).
#[derive(Debug, Clone, Copy)]
pub enum LogShape {
    /// Uniform pattern, 50/50 compute-communication split.
    Pattern(commsched_collectives::Pattern),
    /// Experiment set A–E.
    Mix(MixSet),
}
