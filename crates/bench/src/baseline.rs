//! Baseline regression checks for the `BENCH_*.json` runners.
//!
//! Both runners write a `results` array of `{ "case": ..,
//! "fast_median_ns": .. }` entries. In `--check` mode they re-measure the
//! fast path and compare against the checked-in medians, failing when a
//! case regresses beyond a factor — the CI gate that keeps the optimized
//! paths honest without requiring stable absolute numbers across machines.

use serde_json::Value;

/// Factor beyond which a live median counts as a regression.
pub const REGRESSION_FACTOR: f64 = 2.0;

/// Compare live `(case, fast_median_ns)` measurements against the
/// `results` array of a baseline JSON written by the same runner.
///
/// Returns one human-readable line per case, or an error naming every
/// case whose live median exceeds `factor` times its baseline. Cases
/// missing from the baseline are reported but never fail — a new scenario
/// must be able to land together with its first recorded numbers.
pub fn check_fast_medians(
    baseline: &Value,
    live: &[(String, f64)],
    factor: f64,
) -> Result<Vec<String>, String> {
    let entries = baseline["results"].as_array().cloned().unwrap_or_default();
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (case, live_ns) in live {
        let Some(base_ns) = entries
            .iter()
            .find(|e| e["case"].as_str() == Some(case))
            .and_then(|e| e["fast_median_ns"].as_f64())
        else {
            lines.push(format!("{case}: no baseline entry, skipped"));
            continue;
        };
        let ratio = live_ns / base_ns;
        let line = format!(
            "{case}: live {:.1} µs vs baseline {:.1} µs ({ratio:.2}x)",
            live_ns / 1e3,
            base_ns / 1e3
        );
        if ratio > factor {
            failures.push(format!("{line} — exceeds {factor}x"));
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("\n"))
    }
}

/// Load a baseline file and run [`check_fast_medians`], exiting the
/// process with a report on stderr. Shared `--check` entry point for the
/// bench binaries.
pub fn check_or_exit(path: &str, live: &[(String, f64)]) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: baseline {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    match check_fast_medians(&baseline, live, REGRESSION_FACTOR) {
        Ok(lines) => {
            for line in lines {
                eprintln!("ok: {line}");
            }
            eprintln!("check passed against {path}");
            std::process::exit(0);
        }
        Err(report) => {
            eprintln!("regression detected against {path}:\n{report}");
            std::process::exit(1);
        }
    }
}
