//! The experiment sweep must produce identical output at every rayon
//! thread count: per-cell seeding is deterministic and the vendored rayon
//! concatenates results in source order, so nothing downstream may depend
//! on scheduling. This is the regression gate for the parallel sweep
//! harness — a reduced Figure 6 sweep (3 systems × 5 mixes × 4 selectors,
//! one flat work list) rendered under 1, 2, 4 and 8 worker threads.

use commsched_bench::experiments::{faults, fig6};
use commsched_bench::Scale;
use rayon::ThreadPoolBuilder;

#[test]
fn fig6_sweep_identical_across_thread_counts() {
    let scale = Scale { jobs: 30, seed: 42 };
    let pool = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
    };
    let base = pool(1).install(|| fig6(scale));
    let base_json = serde_json::to_string(&base.json).expect("serialize");
    for threads in [2usize, 4, 8] {
        let run = pool(threads).install(|| fig6(scale));
        assert_eq!(
            base.text, run.text,
            "fig6 text differs between 1 and {threads} threads"
        );
        assert_eq!(
            base_json,
            serde_json::to_string(&run.json).expect("serialize"),
            "fig6 json differs between 1 and {threads} threads"
        );
    }
}

/// The fault-injection sweep adds a second axis of hidden state (one
/// shared MTBF trace per failure rate, engines killing and requeueing jobs
/// mid-run) — it must be just as schedule-independent as the healthy
/// sweep.
#[test]
fn faults_sweep_identical_across_thread_counts() {
    let scale = Scale { jobs: 30, seed: 42 };
    let pool = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
    };
    let base = pool(1).install(|| faults(scale));
    let base_json = serde_json::to_string(&base.json).expect("serialize");
    for threads in [2usize, 4, 8] {
        let run = pool(threads).install(|| faults(scale));
        assert_eq!(
            base.text, run.text,
            "faults text differs between 1 and {threads} threads"
        );
        assert_eq!(
            base_json,
            serde_json::to_string(&run.json).expect("serialize"),
            "faults json differs between 1 and {threads} threads"
        );
    }
}

/// Table 4's individual runs exercise the chunked probe fan-out with
/// per-chunk engine reuse — chunk geometry (a function of the thread
/// budget) must never leak into a byte of output.
#[test]
fn table4_individual_runs_identical_across_thread_counts() {
    use commsched_bench::experiments::table4;
    let scale = Scale { jobs: 30, seed: 42 };
    let pool = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
    };
    let base = pool(1).install(|| table4(scale));
    let base_json = serde_json::to_string(&base.json).expect("serialize");
    for threads in [2usize, 4, 8] {
        let run = pool(threads).install(|| table4(scale));
        assert_eq!(
            base.text, run.text,
            "table4 text differs between 1 and {threads} threads"
        );
        assert_eq!(
            base_json,
            serde_json::to_string(&run.json).expect("serialize"),
            "table4 json differs between 1 and {threads} threads"
        );
    }
}

/// The golden-trace scenarios are what the conformance suite pins to exact
/// bytes, so they must be bit-identical at any thread count — trace bytes
/// and RunReport bytes alike, whether or not rayon is even involved.
#[test]
fn golden_traces_identical_across_thread_counts() {
    use commsched_bench::experiments::{run_golden, GOLDEN_SCENARIOS};
    let pool = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
    };
    for name in GOLDEN_SCENARIOS {
        let (trace1, report1) =
            pool(1).install(|| run_golden(name, 24, 7).expect("known scenario"));
        assert!(!trace1.is_empty(), "{name}: empty trace");
        for threads in [2usize, 4, 8] {
            let (trace_n, report_n) =
                pool(threads).install(|| run_golden(name, 24, 7).expect("known scenario"));
            assert_eq!(
                trace1, trace_n,
                "{name}: trace differs between 1 and {threads} threads"
            );
            assert_eq!(
                report1, report_n,
                "{name}: report differs between 1 and {threads} threads"
            );
        }
    }
}

/// The SA tournament fans annealing searches (seeded ChaCha walks over a
/// shared frozen state) across the cell grid — the searches themselves
/// must be schedule-independent, not just the cell collection order.
#[test]
fn tournament_identical_across_thread_counts() {
    use commsched_bench::experiments::tournament;
    let scale = Scale { jobs: 30, seed: 42 };
    let pool = |threads: usize| {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
    };
    let base = pool(1).install(|| tournament(scale));
    let base_json = serde_json::to_string(&base.json).expect("serialize");
    for threads in [2usize, 4, 8] {
        let run = pool(threads).install(|| tournament(scale));
        assert_eq!(
            base.text, run.text,
            "tournament text differs between 1 and {threads} threads"
        );
        assert_eq!(
            base_json,
            serde_json::to_string(&run.json).expect("serialize"),
            "tournament json differs between 1 and {threads} threads"
        );
    }
}
