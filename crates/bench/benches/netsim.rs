//! Flow-simulator throughput: one full collective under varying fan-out,
//! concurrent-job interference, and the fast-vs-naive rate-solver
//! comparison on the steady-state and churn scenarios.

use commsched_bench::perf::NetsimCase;
use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_netsim::{FlowSim, NetConfig, Workload};
use commsched_topology::{NodeId, Tree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_solo_collective(c: &mut Criterion) {
    let tree = Tree::regular_two_level(8, 32);
    let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
    let mut group = c.benchmark_group("netsim_solo");
    for logp in [3u32, 5, 7] {
        let p = 1usize << logp;
        let nodes: Vec<NodeId> = (0..p).map(NodeId).collect();
        let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
        group.bench_with_input(BenchmarkId::new("rhvd", p), &nodes, |b, nodes| {
            b.iter(|| black_box(sim.solo_time(black_box(nodes), spec)))
        });
    }
    group.finish();
}

fn bench_interference(c: &mut Criterion) {
    // The Figure 1 scenario: two jobs sharing switches for many iterations.
    let tree = Tree::irregular_two_level(&[13, 13, 12, 12]);
    let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
    let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
    let j1: Vec<NodeId> = (0..4).chain(13..17).map(NodeId).collect();
    let j2: Vec<NodeId> = (4..10).chain(17..23).map(NodeId).collect();
    c.bench_function("netsim_fig1_20_iterations", |b| {
        b.iter(|| {
            let res = sim.run(vec![
                Workload {
                    id: 1,
                    nodes: j1.clone(),
                    spec,
                    submit: 0.0,
                    iterations: 20,
                },
                Workload {
                    id: 2,
                    nodes: j2.clone(),
                    spec,
                    submit: 0.01,
                    iterations: 20,
                },
            ]);
            black_box(res[0].end)
        })
    });
}

fn bench_steady_state(c: &mut Criterion) {
    // Machine-spanning collectives: one large coupled component per solve,
    // the incremental solver's worst case.
    let case = NetsimCase::steady_state();
    let mut group = c.benchmark_group("netsim_steady_state");
    group.bench_function("incremental", |b| b.iter(|| black_box(case.run_fast())));
    group.bench_function("naive", |b| b.iter(|| black_box(case.run_naive())));
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // Many short flows arriving/finishing on a 2,048-node machine: events
    // touch tiny components, where the dirty-link frontier pays off.
    let case = NetsimCase::churn();
    let mut group = c.benchmark_group("netsim_churn");
    group.sample_size(10);
    group.bench_function("incremental", |b| b.iter(|| black_box(case.run_fast())));
    group.bench_function("naive", |b| b.iter(|| black_box(case.run_naive())));
    group.finish();
}

criterion_group!(
    benches,
    bench_solo_collective,
    bench_interference,
    bench_steady_state,
    bench_churn
);
criterion_main!(benches);
