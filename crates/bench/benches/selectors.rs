//! Selector throughput at production scale.
//!
//! The paper claims its algorithms add negligible scheduler overhead
//! ("less than 0.1 second", §5.2). These benches time one `select()` call
//! for each algorithm on the Mira-scale topology (49,152 nodes, 144 leaf
//! switches) against a half-occupied cluster, across request sizes.

use commsched_core::{AllocRequest, ClusterState, JobId, JobNature, SelectorKind};
use commsched_topology::{NodeId, SystemPreset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn half_occupied(tree: &commsched_topology::Tree) -> ClusterState {
    let mut state = ClusterState::new(tree);
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let mut nodes: Vec<NodeId> = (0..tree.num_nodes()).map(NodeId).collect();
    nodes.shuffle(&mut rng);
    for (job, chunk) in nodes[..tree.num_nodes() / 2].chunks(512).enumerate() {
        let nature = if job.is_multiple_of(2) {
            JobNature::CommIntensive
        } else {
            JobNature::ComputeIntensive
        };
        state
            .allocate(tree, JobId(job as u64), chunk, nature)
            .unwrap();
    }
    state
}

fn bench_selectors(c: &mut Criterion) {
    let tree = SystemPreset::Mira.build();
    let state = half_occupied(&tree);
    let mut group = c.benchmark_group("select_mira_scale");
    for kind in SelectorKind::ALL {
        for nodes in [256usize, 2048, 16384] {
            let selector = kind.build();
            let req = AllocRequest {
                job: JobId(999_999),
                nodes,
                nature: JobNature::CommIntensive,
                pattern: None,
                attempt: 0,
            };
            group.bench_with_input(BenchmarkId::new(kind.name(), nodes), &req, |b, req| {
                b.iter(|| {
                    let got = selector.select(&tree, &state, black_box(req)).unwrap();
                    black_box(got.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_placement_eval_mira(c: &mut Criterion) {
    // One whole placement evaluation (adaptive decision + Eq. 6/Eq. 7
    // numbers) at Mira scale: the fused-evaluator path against the
    // retained naive clone-based path computing identical values.
    use commsched_bench::perf::PlacementCase;
    use commsched_core::PlacementEvaluator;
    use std::sync::{Arc, Mutex};

    let case = PlacementCase::new(SystemPreset::Mira, 2048);
    let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));
    assert_eq!(case.place_naive(), case.place_fast(&eval));

    let mut group = c.benchmark_group("placement_eval_mira_2048");
    group.sample_size(10);
    group.bench_function("naive", |b| b.iter(|| black_box(case.place_naive())));
    group.bench_function("fast", |b| b.iter(|| black_box(case.place_fast(&eval))));
    group.finish();
}

criterion_group!(benches, bench_selectors, bench_placement_eval_mira);
criterion_main!(benches);
