//! Cost-model (Eq. 6) evaluation time: the inner loop of the adaptive
//! selector and of every Eq. 7 runtime adjustment.

use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_core::{ClusterState, CostModel, JobId, JobNature};
use commsched_topology::{NodeId, SystemPreset, Tree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scattered_allocation(tree: &Tree, n: usize) -> Vec<NodeId> {
    // Every (num_nodes / n)-th node: a worst-ish case that touches many
    // leaf switches.
    let stride = (tree.num_nodes() / n).max(1);
    (0..n).map(|i| NodeId(i * stride)).collect()
}

fn bench_job_cost(c: &mut Criterion) {
    let tree = SystemPreset::Mira.build();
    let mut group = c.benchmark_group("job_cost_eq6");
    for pattern in Pattern::PAPER {
        for logn in [8u32, 11, 14] {
            let n = 1usize << logn;
            let nodes = scattered_allocation(&tree, n);
            let mut state = ClusterState::new(&tree);
            state
                .allocate(&tree, JobId(1), &nodes, JobNature::CommIntensive)
                .unwrap();
            let spec = CollectiveSpec::new(pattern, 1 << 20);
            group.bench_with_input(
                BenchmarkId::new(pattern.to_string(), n),
                &spec,
                |b, spec| {
                    b.iter(|| {
                        black_box(CostModel::HOP_BYTES.job_cost(
                            &tree,
                            &state,
                            black_box(&nodes),
                            spec,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    let tree = SystemPreset::Theta.build();
    let mut state = ClusterState::new(&tree);
    let nodes: Vec<NodeId> = (0..512).map(|i| NodeId(i * 8)).collect();
    state
        .allocate(&tree, JobId(1), &nodes, JobNature::CommIntensive)
        .unwrap();
    c.bench_function("contention_factor_eq3", |b| {
        b.iter(|| {
            black_box(CostModel::HOPS.contention(
                &tree,
                &state,
                black_box(NodeId(0)),
                black_box(NodeId(4000)),
            ))
        })
    });
}

criterion_group!(benches, bench_job_cost, bench_contention);
criterion_main!(benches);
