//! Micro-benchmarks of the substrate crates: hostlist parsing, topology
//! queries and collective schedule generation.

use commsched_collectives::{CollectiveSpec, Pattern};
use commsched_hostlist as hostlist;
use commsched_topology::{NodeId, SystemPreset, Tree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_hostlist(c: &mut Criterion) {
    c.bench_function("hostlist_expand_1k", |b| {
        b.iter(|| black_box(hostlist::expand(black_box("n[0-999]")).unwrap().len()))
    });
    let hosts: Vec<String> = (0..1000).map(|i| format!("n{}", i * 2)).collect();
    c.bench_function("hostlist_compress_1k", |b| {
        b.iter(|| black_box(hostlist::compress(black_box(&hosts)).len()))
    });
}

fn bench_topology(c: &mut Criterion) {
    let tree = SystemPreset::Mira.build();
    c.bench_function("tree_lca_distance_mira", |b| {
        b.iter(|| black_box(tree.distance(black_box(NodeId(17)), black_box(NodeId(48_211)))))
    });
    let conf = tree.to_conf();
    c.bench_function("tree_parse_mira_conf", |b| {
        b.iter(|| black_box(Tree::from_conf(black_box(&conf)).unwrap().num_nodes()))
    });
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_schedule");
    for pattern in Pattern::PAPER {
        let spec = CollectiveSpec::new(pattern, 1 << 20);
        group.bench_with_input(
            BenchmarkId::new(pattern.to_string(), 16384),
            &spec,
            |b, spec| b.iter(|| black_box(spec.steps(16384).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hostlist, bench_topology, bench_schedules);
criterion_main!(benches);
