//! End-to-end scheduling-engine throughput: whole continuous runs, the
//! unit of work behind every Table 3 / Figure 6-9 cell.

use commsched_core::SelectorKind;
use commsched_slurmsim::{Engine, EngineConfig};
use commsched_topology::SystemPreset;
use commsched_workload::{LogSpec, SystemModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_continuous_run(c: &mut Criterion) {
    let tree = SystemPreset::Theta.build();
    let log = LogSpec::new(SystemModel::theta(), 200, 42)
        .comm_percent(90)
        .generate();
    let mut group = c.benchmark_group("engine_theta_200_jobs");
    group.sample_size(10);
    for kind in SelectorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let s = Engine::new(&tree, EngineConfig::new(k))
                    .run(black_box(&log))
                    .unwrap();
                black_box(s.makespan)
            })
        });
    }
    group.finish();
}

fn bench_mira_scale_run(c: &mut Criterion) {
    // The heaviest cell: Mira topology, large jobs, adaptive selector.
    let tree = SystemPreset::Mira.build();
    let log = LogSpec::new(SystemModel::mira(), 100, 42)
        .comm_percent(90)
        .generate();
    let mut group = c.benchmark_group("engine_mira_100_jobs");
    group.sample_size(10);
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let s = Engine::new(&tree, EngineConfig::new(SelectorKind::Adaptive))
                .run(black_box(&log))
                .unwrap();
            black_box(s.makespan)
        })
    });
    group.finish();
}

fn bench_placement_eval(c: &mut Criterion) {
    // The per-job placement evaluation inside the engine (adaptive select +
    // Eq. 6/Eq. 7 numbers), fast fused-evaluator path vs the retained
    // naive clone-and-four-traversals path — same numbers, measured in the
    // same binary.
    use commsched_bench::perf::PlacementCase;
    use commsched_core::PlacementEvaluator;
    use std::sync::{Arc, Mutex};

    let case = PlacementCase::new(SystemPreset::Theta, 256);
    let eval = Arc::new(Mutex::new(PlacementEvaluator::new()));
    assert_eq!(case.place_naive(), case.place_fast(&eval));

    let mut group = c.benchmark_group("placement_eval_theta_256");
    group.bench_function("naive", |b| b.iter(|| black_box(case.place_naive())));
    group.bench_function("fast", |b| b.iter(|| black_box(case.place_fast(&eval))));
    group.finish();
}

criterion_group!(
    benches,
    bench_continuous_run,
    bench_mira_scale_run,
    bench_placement_eval
);
criterion_main!(benches);
