//! Checked numeric conversions for the workspace's hot paths.
//!
//! The static analyzer (`detlint` rule **N1**) forbids raw `as` casts in
//! the solver/engine hot files: a silent truncation or a float rounding of
//! a large integer is exactly the kind of bug that corrupts a simulation
//! without failing a test. Hot files route every conversion through these
//! helpers instead.
//!
//! Each helper compiles to the same single `as` instruction as the raw
//! cast — results are bit-identical — but carries a `debug_assert!` that
//! traps the lossy case under the hardened CI profile
//! (`-C debug-assertions=on`). Helpers that can never lose information
//! (widening conversions) carry no assertion and exist so the hot files
//! contain no `as` token at all.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

/// Largest integer magnitude an `f64` represents exactly (2^53).
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// `u64` → `f64`, exact for values up to 2^53 (every virtual-time second,
/// byte count and node count in the simulator is far below that).
#[inline]
pub fn f64_of_u64(x: u64) -> f64 {
    debug_assert!(x <= F64_EXACT_MAX, "u64 {x} not exactly representable");
    x as f64
}

/// `usize` → `f64`, exact for values up to 2^53.
#[inline]
pub fn f64_of_usize(x: usize) -> f64 {
    debug_assert!(
        x as u64 <= F64_EXACT_MAX,
        "usize {x} not exactly representable"
    );
    x as f64
}

/// `f64` → `u64` for a non-negative integral value (e.g. the result of
/// `round()`); traps on negatives, NaN, fractions and overflow in debug.
#[inline]
pub fn u64_of_f64(x: f64) -> u64 {
    debug_assert!(
        x >= 0.0 && x.fract() == 0.0 && x <= F64_EXACT_MAX as f64,
        "f64 {x} is not a representable non-negative integer"
    );
    x as u64
}

/// `usize` → `u32`; traps on truncation in debug.
#[inline]
pub fn u32_of_usize(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "usize {x} truncated to u32");
    x as u32
}

/// `u32` → `usize`. Lossless on every supported target (usize ≥ 32 bits).
#[inline]
pub fn usize_of_u32(x: u32) -> usize {
    x as usize
}

/// `u64` → `usize`; traps on truncation (32-bit targets) in debug.
#[inline]
pub fn usize_of_u64(x: u64) -> usize {
    debug_assert!(usize::try_from(x).is_ok(), "u64 {x} truncated to usize");
    x as usize
}

/// `usize` → `u64`. Lossless on every supported target.
#[inline]
pub fn u64_of_usize(x: usize) -> u64 {
    x as u64
}

/// `usize` → `i64`; traps when the top bit would flip the sign in debug.
#[inline]
pub fn i64_of_usize(x: usize) -> i64 {
    debug_assert!(i64::try_from(x).is_ok(), "usize {x} overflows i64");
    x as i64
}

/// `u32` → `i32`; traps when the top bit would flip the sign in debug.
#[inline]
pub fn i32_of_u32(x: u32) -> i32 {
    debug_assert!(i32::try_from(x).is_ok(), "u32 {x} overflows i32");
    x as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_exact() {
        assert_eq!(f64_of_u64(0), 0.0);
        assert_eq!(f64_of_u64(F64_EXACT_MAX), 9007199254740992.0);
        assert_eq!(f64_of_usize(123), 123.0);
        assert_eq!(usize_of_u32(u32::MAX), 4294967295);
        assert_eq!(u64_of_usize(7), 7);
    }

    #[test]
    fn narrowing_round_trips_in_range() {
        assert_eq!(u64_of_f64(42.0), 42);
        assert_eq!(u32_of_usize(65536), 65536);
        assert_eq!(usize_of_u64(1 << 20), 1 << 20);
        assert_eq!(i64_of_usize(9), 9);
        assert_eq!(i32_of_u32(13), 13);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    #[cfg(debug_assertions)]
    fn narrowing_traps_in_debug() {
        let _ = u32_of_usize(usize::MAX);
    }
}
