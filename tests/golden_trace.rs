//! Golden-trace conformance suite.
//!
//! Every scenario in `commsched_bench::experiments::GOLDEN_SCENARIOS` is
//! run at a pinned scale (jobs=24, seed=7) and its full-class JSONL trace
//! and pretty `RunReport` JSON are compared **byte for byte** against the
//! checked-in files under `tests/golden/`. Traces derive only from virtual
//! time and seeded state, so any diff here is a real behavior change — in
//! the scheduler, the flow solver, the event schema, or the JSON
//! rendering — and must be either fixed or deliberately re-blessed.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_trace
//! git diff tests/golden/   # review what actually changed
//! ```

use commsched_bench::experiments::{run_golden, GOLDEN_SCENARIOS};
use std::path::PathBuf;

/// The pinned golden scale. Changing either constant re-keys every golden
/// file, so bump them only together with a bless.
const JOBS: usize = 24;
const SEED: u64 = 7;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1")
}

/// Show the first diverging line instead of dumping two multi-KB blobs.
fn assert_same(name: &str, file: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(actual.lines())
        .enumerate()
        .find(|(_, (e, a))| e != a);
    match mismatch {
        Some((i, (e, a))) => panic!(
            "{name}: {file} differs from golden at line {}:\n  golden: {e}\n  actual: {a}\n\
             re-bless with GOLDEN_BLESS=1 if this change is intentional",
            i + 1
        ),
        None => panic!(
            "{name}: {file} differs from golden in length ({} vs {} bytes); \
             re-bless with GOLDEN_BLESS=1 if this change is intentional",
            expected.len(),
            actual.len()
        ),
    }
}

#[test]
fn traces_match_golden_files() {
    let dir = golden_dir();
    let bless = blessing();
    if bless {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    for name in GOLDEN_SCENARIOS {
        let (trace, report) = run_golden(name, JOBS, SEED).expect("known scenario");
        assert!(!trace.is_empty(), "{name}: scenario produced no events");

        // Replay stability first: if the same process cannot reproduce its
        // own bytes, comparing against a checked-in file is meaningless.
        let (trace2, report2) = run_golden(name, JOBS, SEED).expect("known scenario");
        assert_eq!(trace, trace2, "{name}: trace not replay-stable");
        assert_eq!(report, report2, "{name}: report not replay-stable");

        let tpath = dir.join(format!("{name}.trace.jsonl"));
        let rpath = dir.join(format!("{name}.report.json"));
        if bless {
            std::fs::write(&tpath, &trace).expect("write golden trace");
            std::fs::write(&rpath, &report).expect("write golden report");
            continue;
        }
        let want_trace = std::fs::read_to_string(&tpath).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden_trace",
                tpath.display()
            )
        });
        let want_report = std::fs::read_to_string(&rpath).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden_trace",
                rpath.display()
            )
        });
        assert_same(name, "trace", &want_trace, &trace);
        assert_same(name, "report", &want_report, &report);
    }
}

/// The golden files themselves must be well-formed JSONL/JSON — guards
/// against a bad hand edit or a truncated bless.
#[test]
fn golden_files_are_well_formed() {
    if blessing() {
        return; // files may not exist yet mid-bless
    }
    for name in GOLDEN_SCENARIOS {
        let trace = std::fs::read_to_string(golden_dir().join(format!("{name}.trace.jsonl")))
            .expect("golden trace present");
        let mut last_t = 0u64;
        for (i, line) in trace.lines().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert_eq!(
                v.get("seq").and_then(|s| s.as_u64()),
                Some(i as u64),
                "{name}: sequence numbers must be dense"
            );
            let t = v.get("t_us").and_then(|t| t.as_u64()).expect("t_us");
            assert!(t >= last_t, "{name}: timestamps must be non-decreasing");
            assert!(v.get("ev").is_some(), "{name}: every event is tagged");
            last_t = t;
        }
        let report = std::fs::read_to_string(golden_dir().join(format!("{name}.report.json")))
            .expect("golden report present");
        let v: serde_json::Value = serde_json::from_str(&report).expect("valid report JSON");
        assert_eq!(
            v.get("version").and_then(|x| x.as_u64()),
            Some(commsched::metrics::RUN_REPORT_VERSION),
            "{name}: report version"
        );
    }
}
