//! End-to-end tournament guarantees for the annealed selector.
//!
//! Two pins: on a contended three-level tree the budgeted search strictly
//! beats the greedy Eq. 6 cost (and the adaptive incumbent — a real
//! annealing win, not just inheriting balanced's edge), and with budget 0
//! the selector is a bit-for-bit stand-in for adaptive, so the Table 2
//! repro and continuous-run outputs cannot regress under `--selector sa
//! --sa-budget 0`.

use commsched::collectives::{CollectiveSpec, Pattern};
use commsched::core::{
    AdaptiveSelector, AllocRequest, BalancedSelector, ClusterState, CostModel, GreedySelector,
    JobId, JobNature, NodeSelector, PlacementEvaluator, SaBudget, SaSelector, SelectorKind,
};
use commsched::prelude::*;
use commsched::slurmsim::EngineConfig as Cfg;

/// Eq. 6 hop-bytes of a placement (the model the selectors optimize).
fn cost(tree: &Tree, st: &ClusterState, nodes: &[NodeId], spec: &CollectiveSpec) -> f64 {
    PlacementEvaluator::new()
        .evaluate(tree, st, CostModel::HOP_BYTES.trunk_discount, nodes, spec)
        .for_model(&CostModel::HOP_BYTES)
}

/// The pinned contended machine: two aggregation switches over eight
/// 8-node leaves. Leaves 0–1 host busy communication-intensive jobs
/// (contention), leaves 2–3 hold quiet compute jobs with fewer free
/// nodes, and the second aggregation domain is half-busy with comm
/// traffic — so the cheapest 20-node placement is not the greedy
/// most-free-first one, and finding it takes search.
fn contended_scenario() -> (Tree, ClusterState) {
    let tree = Tree::regular_three_level(2, 4, 8);
    let mut st = ClusterState::new(&tree);
    let mut id = 100u64;
    let mut alloc = |st: &mut ClusterState, nodes: &[usize], nature: JobNature| {
        let nodes: Vec<NodeId> = nodes.iter().copied().map(NodeId).collect();
        st.allocate(&tree, JobId(id), &nodes, nature).unwrap();
        id += 1;
    };
    // Leaves 0 and 1 (nodes 0..8, 8..16): two comm nodes busy each.
    alloc(&mut st, &[0, 1], JobNature::CommIntensive);
    alloc(&mut st, &[8, 9], JobNature::CommIntensive);
    // Leaves 2 and 3 (16..24, 24..32): three compute nodes busy each.
    alloc(&mut st, &[16, 17, 18], JobNature::ComputeIntensive);
    alloc(&mut st, &[24, 25, 26], JobNature::ComputeIntensive);
    // Leaves 4..8 (32..64): four comm nodes busy on each.
    for leaf in 4..8 {
        let base = leaf * 8;
        alloc(
            &mut st,
            &[base, base + 1, base + 2, base + 3],
            JobNature::CommIntensive,
        );
    }
    (tree, st)
}

#[test]
fn sa_strictly_beats_greedy_on_contended_tree() {
    let (tree, st) = contended_scenario();
    let req =
        AllocRequest::comm(JobId(1), 20).with_pattern(CollectiveSpec::new(Pattern::Rhvd, 1 << 20));
    let spec = req.spec();

    let greedy = GreedySelector.select(&tree, &st, &req).unwrap();
    let balanced = BalancedSelector.select(&tree, &st, &req).unwrap();
    let adaptive = AdaptiveSelector::default()
        .select(&tree, &st, &req)
        .unwrap();
    let sa = SaSelector::new(SaBudget::with_evals(256), 42)
        .select(&tree, &st, &req)
        .unwrap();

    let cost_g = cost(&tree, &st, &greedy, &spec);
    let cost_b = cost(&tree, &st, &balanced, &spec);
    let cost_a = cost(&tree, &st, &adaptive, &spec);
    let cost_sa = cost(&tree, &st, &sa, &spec);
    println!("greedy {cost_g} balanced {cost_b} adaptive {cost_a} sa {cost_sa}");

    // The acceptance pin: budget 256 strictly under greedy...
    assert!(
        cost_sa < cost_g,
        "sa@256 ({cost_sa}) must strictly beat greedy ({cost_g})"
    );
    // ...and strictly under the adaptive incumbent too — the improvement
    // comes from the annealing walk, not from inheriting balanced's win.
    assert!(
        cost_sa < cost_a,
        "sa@256 ({cost_sa}) must strictly beat the incumbent ({cost_a})"
    );
}

#[test]
fn budget_zero_never_regresses_adaptive_outputs() {
    // Table 2: the balanced split itself, untouched by the SA machinery.
    let tree = Tree::irregular_two_level(&[160, 150, 100, 80, 70, 50, 40]);
    let state = ClusterState::new(&tree);
    let nodes = BalancedSelector
        .select(&tree, &state, &AllocRequest::comm(JobId(1), 512))
        .unwrap();
    let mut per_leaf = vec![0usize; tree.num_leaves()];
    for n in &nodes {
        per_leaf[tree.leaf_ordinal_of(*n)] += 1;
    }
    assert_eq!(per_leaf, [128, 128, 64, 64, 64, 32, 32], "Table 2 split");

    // And on the same machine, sa@0 is the adaptive placement verbatim.
    let adaptive = AdaptiveSelector::default()
        .select(&tree, &state, &AllocRequest::comm(JobId(2), 512))
        .unwrap();
    let sa0 = SaSelector::new(SaBudget::with_evals(0), 42)
        .select(&tree, &state, &AllocRequest::comm(JobId(2), 512))
        .unwrap();
    assert_eq!(adaptive, sa0, "sa@0 diverged from adaptive");
}

#[test]
fn engine_with_sa_budget_zero_matches_adaptive_run() {
    // A whole continuous run: `--selector sa --sa-budget 0` must produce
    // the same schedule — same outcomes, same makespan — as adaptive.
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(
        SystemModel {
            name: "toy",
            total_nodes: 32,
            min_request: 1,
            max_request: 16,
            pow2_fraction: 0.9,
            mean_interarrival: 60.0,
            runtime_median: 600.0,
            runtime_sigma: 1.0,
            walltime_slack: 1.5,
        },
        60,
        9,
    )
    .comm_percent(90)
    .pattern(Pattern::Rhvd)
    .generate();

    let adaptive = Engine::new(&tree, Cfg::new(SelectorKind::Adaptive))
        .run(&log)
        .unwrap();
    let sa0 = Engine::new(
        &tree,
        Cfg::new(SelectorKind::Sa).with_sa(SaBudget::with_evals(0), 7),
    )
    .run(&log)
    .unwrap();
    assert_eq!(adaptive.outcomes, sa0.outcomes);
    assert_eq!(adaptive.makespan, sa0.makespan);
}
