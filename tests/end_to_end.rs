//! Cross-crate integration tests: topology.conf → scheduler → metrics, the
//! whole pipeline through the public facade API only.

use commsched::collectives::CollectiveSpec;
use commsched::core::{ClusterState, CostModel};
use commsched::netsim::{FlowSim, NetConfig, Workload};
use commsched::prelude::*;
use commsched::topology::SystemPreset;
use commsched::workload::swf;

/// A Theta-flavoured toy system that fits test-sized topologies.
fn toy_system(total: usize, max_req: usize) -> SystemModel {
    SystemModel {
        name: "toy",
        total_nodes: total,
        min_request: 1,
        max_request: max_req,
        pow2_fraction: 0.9,
        mean_interarrival: 60.0,
        runtime_median: 600.0,
        runtime_sigma: 1.0,
        walltime_slack: 1.5,
    }
}

#[test]
fn conf_file_to_schedule_pipeline() {
    // Build a topology from SLURM conf text, generate a log, run the
    // engine, and cross-check the metrics — every crate in one flow.
    let conf = "\
        SwitchName=s0 Nodes=n[0-15]\n\
        SwitchName=s1 Nodes=n[16-31]\n\
        SwitchName=s2 Nodes=n[32-47]\n\
        SwitchName=top Switches=s[0-2]\n";
    let tree = Tree::from_conf(conf).unwrap();
    assert_eq!(tree.num_nodes(), 48);

    let log = LogSpec::new(toy_system(48, 32), 150, 3)
        .comm_percent(90)
        .pattern(Pattern::Rhvd)
        .generate();

    let mut exec_hours = Vec::new();
    for kind in SelectorKind::ALL {
        let summary = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .unwrap();
        assert_eq!(summary.outcomes.len(), 150);
        // Wait + exec == turnaround for every job.
        for o in &summary.outcomes {
            assert_eq!(o.wait() + o.exec(), o.turnaround());
        }
        exec_hours.push(summary.total_exec_hours());
    }
    // The paper's headline: balanced and adaptive beat the default.
    assert!(exec_hours[2] <= exec_hours[0], "balanced {exec_hours:?}");
    assert!(exec_hours[3] <= exec_hours[0], "adaptive {exec_hours:?}");
}

#[test]
fn table2_through_public_api() {
    let tree = Tree::irregular_two_level(&[160, 150, 100, 80, 70, 50, 40]);
    let state = ClusterState::new(&tree);
    let req = AllocRequest::comm(JobId(1), 512);
    let nodes = BalancedSelector.select(&tree, &state, &req).unwrap();
    let mut per_leaf = vec![0usize; tree.num_leaves()];
    for n in &nodes {
        per_leaf[tree.leaf_ordinal_of(*n)] += 1;
    }
    assert_eq!(per_leaf, [128, 128, 64, 64, 64, 32, 32]);
}

#[test]
fn paper_presets_run_a_full_log() {
    // A scaled-down Table 3 cell on the real Theta preset topology.
    let tree = SystemPreset::Theta.build();
    let log = LogSpec::new(SystemModel::theta(), 120, 9)
        .comm_percent(90)
        .pattern(Pattern::Rd)
        .generate();
    let default = Engine::new(&tree, EngineConfig::new(SelectorKind::Default))
        .run(&log)
        .unwrap();
    let adaptive = Engine::new(&tree, EngineConfig::new(SelectorKind::Adaptive))
        .run(&log)
        .unwrap();
    assert!(adaptive.total_exec_hours() <= default.total_exec_hours() + 1e-9);
    // Default replays log runtimes exactly.
    for o in &default.outcomes {
        assert_eq!(o.runtime_adjusted, o.runtime_original);
    }
}

#[test]
fn swf_round_trips_through_engine() {
    let orig = LogSpec::new(toy_system(48, 16), 60, 5).generate();
    let text = swf::emit(&orig);
    let mut parsed = swf::parse(&text, "rt", 1).unwrap();
    swf::assign_natures(&mut parsed, 90, &[(Pattern::Binomial, 0.5)], 11);

    let tree = Tree::regular_two_level(3, 16);
    let summary = Engine::new(&tree, EngineConfig::new(SelectorKind::Greedy))
        .run(&parsed)
        .unwrap();
    assert_eq!(summary.outcomes.len(), 60);
}

#[test]
fn netsim_correlates_with_cost_model() {
    // The §5.3 validation, as an integration test: across many placements
    // of a probe collective under a fixed interferer, the Eq. 6 cost and
    // the flow simulator's measured time must correlate strongly. (The
    // paper reports r = 0.83 on real hardware; pointwise agreement is NOT
    // guaranteed — Eq. 6 is a max-per-step approximation.)
    let tree = Tree::regular_two_level(2, 16);
    let sim = FlowSim::new(&tree, NetConfig::gigabit_ethernet());
    let spec = CollectiveSpec::new(Pattern::Rhvd, 8 << 20);
    let model = CostModel::HOP_BYTES;

    // The probe sits 4+4 across the leaves (the Figure 1 placement); the
    // interferer grows through power-of-two sizes on the same leaves, so
    // trunk contention — the effect Eq. 3 prices — rises monotonically.
    // (Pointwise the fluid model and Eq. 6 can disagree: max-per-step
    // ignores trunk self-queueing, and the fluid model has no switch
    // backplane. The correlation over contention states is the claim.)
    let mut costs = Vec::new();
    let mut times = Vec::new();
    for half in [0usize, 1, 2, 4, 6, 8] {
        let probe: Vec<NodeId> = (0..4).chain(16..20).map(NodeId).collect();
        let interferer: Vec<NodeId> = (8..8 + half).chain(24..24 + half).map(NodeId).collect();

        let mut st = ClusterState::new(&tree);
        if !interferer.is_empty() {
            st.allocate(&tree, JobId(9), &interferer, JobNature::CommIntensive)
                .unwrap();
        }
        costs.push(model.hypothetical_cost(&tree, &mut st, &probe, &spec));

        let mut workloads = vec![Workload {
            id: 1,
            nodes: probe,
            spec,
            submit: 0.0,
            iterations: 5,
        }];
        if !interferer.is_empty() {
            workloads.push(Workload {
                id: 2,
                nodes: interferer,
                spec,
                submit: 0.0,
                iterations: 40,
            });
        }
        let res = sim.run(workloads);
        times.push(res[0].end);
    }
    let r = commsched::metrics::pearson(&costs, &times);
    assert!(
        r > 0.5,
        "cost/time correlation too weak: r = {r}, costs {costs:?}, times {times:?}"
    );
}

#[test]
fn individual_runs_via_facade() {
    use commsched::slurmsim::individual::{individual_runs, warmup_state};
    let tree = Tree::regular_two_level(4, 12);
    let log = LogSpec::new(toy_system(48, 16), 200, 13)
        .comm_percent(90)
        .pattern(Pattern::Rhvd)
        .generate();
    let state = warmup_state(&tree, &log, 0.5);
    let probes: Vec<_> = log
        .jobs
        .iter()
        .filter(|j| j.nature.is_comm() && j.nodes <= state.free_total())
        .take(30)
        .cloned()
        .collect();
    let outcomes = individual_runs(
        &tree,
        &state,
        &probes,
        EngineConfig::new(SelectorKind::Default),
    );
    assert!(!outcomes.is_empty());
    for o in &outcomes {
        // All four selectors place each probe from the same state.
        assert_eq!(o.placements.len(), 4);
        // Default placement replays the original runtime.
        let d = o
            .placements
            .iter()
            .find(|p| p.selector == "default")
            .unwrap();
        assert_eq!(d.runtime_adjusted, o.runtime_original);
    }
}

#[test]
fn hostlist_topology_round_trip_at_scale() {
    // Mira-preset topology survives conf round-trip with identical
    // distances sampled across the machine.
    let tree = SystemPreset::Mira.build();
    let tree2 = Tree::from_conf(&tree.to_conf()).unwrap();
    assert_eq!(tree.num_nodes(), tree2.num_nodes());
    for (a, b) in [(0usize, 1usize), (0, 400), (5000, 40000), (49000, 49151)] {
        assert_eq!(
            tree.distance(NodeId(a), NodeId(b)),
            tree2.distance(NodeId(a), NodeId(b))
        );
    }
}

#[test]
fn prelude_covers_the_working_surface() {
    // A condensed end-to-end flow written only with prelude imports: the
    // facade must be sufficient for the common workflow.
    let tree = Tree::regular_two_level(4, 8);
    let log = LogSpec::new(toy_system(32, 16), 60, 21)
        .comm_percent(90)
        .pattern(Pattern::Rd)
        .generate();
    let mut cfg = EngineConfig::new(SelectorKind::Adaptive);
    cfg.backfill = commsched::slurmsim::BackfillPolicy::Conservative;
    let summary = Engine::new(&tree, cfg).run(&log).unwrap();
    assert_eq!(summary.outcomes.len(), 60);
    assert!(summary.peak_utilization(tree.num_nodes()) <= 1.0 + 1e-9);

    // Mapping strategies reachable through the facade too.
    use commsched::core::mapping::map_ranks;
    let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
    let layout = map_ranks(&tree, &nodes, MappingStrategy::AlignedBlocks);
    assert_eq!(layout.len(), 4);
}

#[test]
fn trace_reconciles_with_lost_node_accounting() {
    // A faulted, requeue-heavy run traced end to end: the node-seconds the
    // engine says failures destroyed must be recoverable from the trace
    // alone, by pairing each start span with the requeue/cancel that kills
    // it. Any drift between the two is a bug in one of them.
    use commsched::metrics::Registry;
    use commsched::slurmsim::{FailurePolicy, JobStatus};
    use commsched::trace::{Capture, EventKind};
    use commsched::workload::FaultTrace;

    let tree = Tree::regular_two_level(3, 6); // 18 nodes
    let log = LogSpec::new(toy_system(18, 12), 40, 11)
        .comm_percent(70)
        .generate();
    let horizon = log
        .jobs
        .iter()
        .map(|j| j.submit + j.walltime)
        .max()
        .unwrap_or(0)
        .max(1);
    let faults = FaultTrace::mtbf(18, 20_000.0, 2_000.0, horizon, 0xFA17).unwrap();

    let mut cfg = EngineConfig::new(SelectorKind::Adaptive);
    cfg.backfill = BackfillPolicy::Easy;
    cfg.failure_policy = FailurePolicy::Requeue {
        max_retries: 2,
        backoff: 30,
    };
    let engine = Engine::new(&tree, cfg).with_faults(faults);
    let mut cap = Capture::new();
    let mut reg = Registry::new();
    let summary = engine.run_observed(&log, &mut cap, &mut reg).unwrap();

    // Pair every start span with whatever closes it and total the work a
    // kill destroyed: (kill_time - start_time) * allocated nodes.
    let mut open: Vec<(u64, u32, u64, u64)> = Vec::new(); // (job, attempt, t_us, nodes)
    let mut lost_from_trace = 0u64;
    let mut requeues = 0u64;
    for ev in &cap.events {
        match ev.kind {
            EventKind::JobStart {
                job,
                attempt,
                nodes,
                ..
            } => open.push((job, attempt, ev.t_us, nodes)),
            EventKind::JobRequeue { job, attempt, .. } => {
                requeues += 1;
                let k = open
                    .iter()
                    .position(|&(j, a, _, _)| (j, a) == (job, attempt))
                    .expect("requeue closes an open span");
                let (_, _, start_us, nodes) = open.remove(k);
                lost_from_trace += (ev.t_us - start_us) / 1_000_000 * nodes;
            }
            EventKind::JobFinish {
                job,
                attempt,
                status,
            } => {
                let k = open
                    .iter()
                    .position(|&(j, a, _, _)| (j, a) == (job, attempt))
                    .expect("finish closes an open span");
                let (_, _, start_us, nodes) = open.remove(k);
                if status == commsched::trace::EndStatus::Cancelled {
                    lost_from_trace += (ev.t_us - start_us) / 1_000_000 * nodes;
                }
            }
            _ => {}
        }
    }
    assert!(
        open.is_empty(),
        "every span is closed by the end of the run"
    );

    let lost_from_engine: u64 = summary.outcomes.iter().map(|o| o.lost_node_seconds).sum();
    assert!(
        lost_from_engine > 0,
        "scenario must actually lose work to failures"
    );
    assert_eq!(
        lost_from_trace, lost_from_engine,
        "trace-derived lost node-seconds must match the engine's accounting"
    );
    assert_eq!(
        requeues,
        summary.total_retries(),
        "one requeue event per retry"
    );

    // The RunReport agrees with both.
    assert_eq!(
        reg.counter_value("jobs.requeued"),
        Some(requeues),
        "registry counter tracks requeue events"
    );
    let report = reg.snapshot().to_json_pretty();
    assert!(
        report.contains(&format!("\"lost_node_seconds\": {lost_from_engine}.0")),
        "report gauge carries the same total: {report}"
    );
    assert_eq!(
        summary.count_status(JobStatus::Completed)
            + summary.count_status(JobStatus::Cancelled)
            + summary.count_status(JobStatus::Rejected),
        log.jobs.len(),
        "every job ends in exactly one terminal state"
    );
}
