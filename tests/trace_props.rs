//! Property tests for the trace layer: whatever the workload, selector,
//! backfill policy, or fault pattern, a trace must obey its structural
//! invariants — dense sequence numbers, non-decreasing virtual time,
//! `place` immediately before each `start`, every `finish`/`requeue`
//! closing a span that a `start` opened — and the in-memory [`Capture`]
//! sink must render byte-identically to a streaming [`JsonlRecorder`].

use commsched::metrics::Registry;
use commsched::prelude::*;
use commsched::slurmsim::FailurePolicy;
use commsched::trace::{Capture, Event, EventKind, JsonlRecorder};
use commsched::workload::FaultTrace;
use proptest::prelude::*;

fn toy_log(seed: u64, pct: u8, jobs: usize) -> JobLog {
    LogSpec::new(
        SystemModel {
            name: "toy",
            total_nodes: 18,
            min_request: 1,
            max_request: 12,
            pow2_fraction: 0.7,
            mean_interarrival: 60.0,
            runtime_median: 400.0,
            runtime_sigma: 1.0,
            walltime_slack: 1.5,
        },
        jobs,
        seed,
    )
    .comm_percent(pct)
    .generate()
}

fn engine_for(
    tree: &Tree,
    sel: usize,
    backfill: usize,
    policy: usize,
    faults: Option<FaultTrace>,
) -> Engine<'_> {
    let kind = SelectorKind::ALL[sel % SelectorKind::ALL.len()];
    let mut cfg = EngineConfig::new(kind);
    cfg.backfill = [
        BackfillPolicy::None,
        BackfillPolicy::Easy,
        BackfillPolicy::Conservative,
    ][backfill % 3];
    cfg.failure_policy = [
        FailurePolicy::Cancel,
        FailurePolicy::Requeue {
            max_retries: 2,
            backoff: 15,
        },
        FailurePolicy::RequeueFront,
    ][policy % 3];
    let mut engine = Engine::new(tree, cfg);
    if let Some(f) = faults {
        engine = engine.with_faults(f);
    }
    engine
}

fn mtbf_faults(seed: u64, log: &JobLog) -> Option<FaultTrace> {
    let horizon = log
        .jobs
        .iter()
        .map(|j| j.submit + j.walltime)
        .max()
        .unwrap_or(0)
        .max(1);
    FaultTrace::mtbf(18, 30_000.0, 2_000.0, horizon, seed).ok()
}

/// The structural invariants every engine trace must satisfy.
fn check_trace_invariants(events: &[Event]) {
    let mut last_t = 0u64;
    // (job, attempt) spans opened by `start` and not yet closed.
    let mut open: Vec<(u64, u32)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "sequence numbers must be dense");
        assert!(ev.t_us >= last_t, "timestamps must be non-decreasing");
        last_t = ev.t_us;
        match ev.kind {
            EventKind::JobStart { job, attempt, .. } => {
                // `place` carries the placement decision for exactly this
                // start, so it must be the immediately preceding event.
                match i.checked_sub(1).map(|p| events[p].kind) {
                    Some(EventKind::JobPlace {
                        job: pj,
                        attempt: pa,
                        ..
                    }) => {
                        assert_eq!((pj, pa), (job, attempt), "place/start must pair up");
                    }
                    other => panic!("start at seq {i} not preceded by place: {other:?}"),
                }
                assert!(
                    !open.contains(&(job, attempt)),
                    "span (job {job}, attempt {attempt}) started twice"
                );
                open.push((job, attempt));
            }
            EventKind::JobFinish { job, attempt, .. } => {
                let pos = open
                    .iter()
                    .position(|&s| s == (job, attempt))
                    .unwrap_or_else(|| {
                        panic!("finish of (job {job}, attempt {attempt}) closes nothing")
                    });
                open.remove(pos);
            }
            EventKind::JobRequeue { job, attempt, .. } => {
                let pos = open
                    .iter()
                    .position(|&s| s == (job, attempt))
                    .unwrap_or_else(|| {
                        panic!("requeue of (job {job}, attempt {attempt}) closes nothing")
                    });
                open.remove(pos);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "spans left open at end of run: {open:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Healthy runs: invariants hold for every selector × backfill combo.
    #[test]
    fn healthy_traces_are_well_formed(
        seed in any::<u64>(),
        pct in 0u8..=100,
        sel in 0usize..4,
        backfill in 0usize..3,
    ) {
        let tree = Tree::regular_two_level(3, 6);
        let log = toy_log(seed, pct, 25);
        let engine = engine_for(&tree, sel, backfill, 0, None);
        let mut cap = Capture::new();
        let mut reg = Registry::new();
        engine.run_observed(&log, &mut cap, &mut reg).expect("toy log fits");
        check_trace_invariants(&cap.events);
    }

    /// Faulted runs: kills, requeues and retries must still produce
    /// well-formed traces under every failure policy.
    #[test]
    fn faulted_traces_are_well_formed(
        seed in any::<u64>(),
        sel in 0usize..4,
        backfill in 0usize..3,
        policy in 0usize..3,
    ) {
        let tree = Tree::regular_two_level(3, 6);
        let log = toy_log(seed, 80, 25);
        let faults = mtbf_faults(seed ^ 0xFA17, &log);
        let engine = engine_for(&tree, sel, backfill, policy, faults);
        let mut cap = Capture::new();
        let mut reg = Registry::new();
        engine.run_observed(&log, &mut cap, &mut reg).expect("toy log fits");
        check_trace_invariants(&cap.events);
    }

    /// The in-memory Capture and the streaming JSONL sink are two views of
    /// the same event sequence: identical bytes, event for event.
    #[test]
    fn capture_and_jsonl_sinks_agree(
        seed in any::<u64>(),
        sel in 0usize..4,
        policy in 0usize..3,
    ) {
        let tree = Tree::regular_two_level(3, 6);
        let log = toy_log(seed, 60, 20);
        let faults = mtbf_faults(seed ^ 0x51de, &log);

        let mut cap = Capture::new();
        let mut reg1 = Registry::new();
        let s1 = engine_for(&tree, sel, 1, policy, faults.clone())
            .run_observed(&log, &mut cap, &mut reg1)
            .expect("toy log fits");

        let mut jsonl = JsonlRecorder::new(Vec::new());
        let mut reg2 = Registry::new();
        let s2 = engine_for(&tree, sel, 1, policy, faults)
            .run_observed(&log, &mut jsonl, &mut reg2)
            .expect("toy log fits");
        let (bytes, err) = jsonl.into_inner();
        prop_assert!(err.is_none(), "in-memory writer cannot fail");

        prop_assert_eq!(s1.outcomes.len(), s2.outcomes.len());
        prop_assert_eq!(cap.to_jsonl().into_bytes(), bytes);
        prop_assert_eq!(
            reg1.snapshot().to_json_pretty(),
            reg2.snapshot().to_json_pretty()
        );
    }

    /// Tracing must never change scheduling: summaries from `run` and
    /// `run_observed` are interchangeable.
    #[test]
    fn tracing_never_changes_outcomes(
        seed in any::<u64>(),
        sel in 0usize..4,
        backfill in 0usize..3,
    ) {
        let tree = Tree::regular_two_level(3, 6);
        let log = toy_log(seed, 50, 20);
        let plain = engine_for(&tree, sel, backfill, 0, None)
            .run(&log)
            .expect("toy log fits");
        let mut cap = Capture::new();
        let mut reg = Registry::new();
        let observed = engine_for(&tree, sel, backfill, 0, None)
            .run_observed(&log, &mut cap, &mut reg)
            .expect("toy log fits");
        prop_assert_eq!(plain, observed);
    }
}
