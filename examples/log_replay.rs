//! Replay a job log through the SLURM-like engine under every allocator
//! and print the paper's five metrics side by side.
//!
//! ```text
//! # synthetic Theta-like log (default)
//! cargo run --release --example log_replay
//!
//! # a real Parallel Workload Archive trace, 4 cores/node, Theta topology
//! cargo run --release --example log_replay -- --swf path/to/log.swf --ppn 4
//! ```
//!
//! SWF traces carry no job nature, so 90% of jobs are labelled
//! communication-intensive with a 50% RHVD component — the paper's Table 3
//! protocol.

use commsched::prelude::*;
use commsched::topology::SystemPreset;
use commsched::workload::swf;

fn main() {
    let mut swf_path: Option<String> = None;
    let mut ppn = 1usize;
    let mut jobs = 500usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--swf" => swf_path = args.next(),
            "--ppn" => ppn = args.next().and_then(|v| v.parse().ok()).expect("--ppn N"),
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            other => panic!("unknown flag {other}"),
        }
    }

    let tree = SystemPreset::Theta.build();
    let log = match swf_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable SWF file");
            let mut log = swf::parse(&text, &path, ppn).expect("valid SWF");
            log.jobs.truncate(jobs);
            log.jobs.retain(|j| j.nodes <= tree.num_nodes());
            swf::assign_natures(&mut log, 90, &[(Pattern::Rhvd, 0.5)], 42);
            log
        }
        None => LogSpec::new(SystemModel::theta(), jobs, 42)
            .comm_percent(90)
            .pattern(Pattern::Rhvd)
            .generate(),
    };
    println!(
        "log {:?}: {} jobs, max request {} nodes, {:.0}% power-of-two, {:.0}% comm-intensive\n",
        log.name,
        log.jobs.len(),
        log.max_nodes(),
        100.0 * log.pow2_fraction(),
        log.comm_percent(),
    );

    println!(
        "{:>9}  {:>10} {:>10} {:>12} {:>10} {:>12}",
        "selector", "exec(h)", "wait(h)", "turnaround(h)", "node-h/job", "comm cost"
    );
    for kind in SelectorKind::ALL {
        let summary = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .expect("log fits topology");
        println!(
            "{:>9}  {:>10.1} {:>10.1} {:>12.2} {:>10.1} {:>12.0}",
            kind.name(),
            summary.total_exec_hours(),
            summary.total_wait_hours(),
            summary.avg_turnaround_hours(),
            summary.avg_node_hours(),
            summary.total_comm_cost(),
        );
    }
}
