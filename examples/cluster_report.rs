//! Load a SLURM `topology.conf`, run a synthetic workload through the
//! engine, and report per-leaf utilization and communication ratios — the
//! operator's view of what the communication-aware allocators change.
//!
//! ```text
//! cargo run --release --example cluster_report [-- --conf topology.conf]
//! ```
//!
//! Without `--conf`, the paper's Figure 2 topology (scaled to 4 leaves of
//! 16 nodes) is used.

use commsched::core::ClusterState;
use commsched::prelude::*;

fn main() {
    let mut conf_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--conf" {
            conf_path = args.next();
        }
    }

    let tree = match conf_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).expect("readable topology.conf");
            Tree::from_conf(&text).expect("valid topology.conf")
        }
        None => Tree::regular_two_level(4, 16),
    };
    println!(
        "topology: {} nodes, {} leaf switches, {} levels\n{}",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.height(),
        tree.to_conf()
    );

    // A synthetic log scaled to this machine.
    let system = SystemModel {
        name: "custom",
        total_nodes: tree.num_nodes(),
        min_request: 1,
        max_request: (tree.num_nodes() / 2).max(1),
        pow2_fraction: 0.9,
        mean_interarrival: 180.0,
        runtime_median: 1800.0,
        runtime_sigma: 1.0,
        walltime_slack: 1.5,
    };
    let log = LogSpec::new(system, 200, 7)
        .comm_percent(90)
        .pattern(Pattern::Rhvd)
        .generate();

    for kind in [SelectorKind::Default, SelectorKind::Adaptive] {
        let summary = Engine::new(&tree, EngineConfig::new(kind))
            .run(&log)
            .expect("log fits");
        println!(
            "== {} ==  exec {:.1} h   wait {:.1} h   comm cost {:.0}",
            kind.name(),
            summary.total_exec_hours(),
            summary.total_wait_hours(),
            summary.total_comm_cost(),
        );

        // Reconstruct the busiest instant's per-leaf picture: replay the
        // outcome intervals and sample at the moment of peak usage.
        let peak_t = summary
            .outcomes
            .iter()
            .map(|o| o.start)
            .max_by_key(|&t| {
                summary
                    .outcomes
                    .iter()
                    .filter(|o| o.start <= t && t < o.end)
                    .map(|o| o.nodes)
                    .sum::<usize>()
            })
            .unwrap_or(0);
        let mut state = ClusterState::new(&tree);
        // Re-place jobs active at peak_t with the same selector to show the
        // leaf-level shape this policy produces.
        let selector = kind.build();
        for o in summary
            .outcomes
            .iter()
            .filter(|o| o.start <= peak_t && peak_t < o.end)
        {
            let req = AllocRequest {
                job: o.id,
                nodes: o.nodes,
                nature: o.nature,
                pattern: None,
                attempt: 0,
            };
            if let Ok(nodes) = selector.select(&tree, &state, &req) {
                let _ = state.allocate(&tree, o.id, &nodes, o.nature);
            }
        }
        println!("  per-leaf occupancy at peak (t = {peak_t}s):");
        for k in 0..tree.num_leaves() {
            let bar = "#".repeat(state.leaf_busy(k) as usize * 32 / tree.leaf_size(k).max(1));
            println!(
                "    leaf {k:>2}: busy {:>3}/{:<3} comm {:>3}  ratio {:.2}  {bar}",
                state.leaf_busy(k),
                tree.leaf_size(k),
                state.leaf_comm(k),
                state.communication_ratio(&tree, k),
            );
        }
    }
}
