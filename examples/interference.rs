//! Recreate the paper's Figure 1 motivation study on the flow-level
//! network simulator: a job's allgather slows down exactly while a second
//! job communicates across the same switches.
//!
//! ```text
//! cargo run --release --example interference [--trunk-factor F]
//! ```
//!
//! `--trunk-factor 2` turns the skinny tree into a fat-tree whose uplinks
//! double per level — watch the spikes shrink.

use commsched::collectives::CollectiveSpec;
use commsched::netsim::{FlowSim, NetConfig, Workload};
// (LinkStats come back from run_with_stats below.)
use commsched::prelude::*;
use commsched::topology::SystemPreset;

fn main() {
    // The oversubscribed-switch model (like the paper's department
    // cluster); --trunk-factor still scales the uplinks.
    let mut cfg = NetConfig::cheap_ethernet();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trunk-factor" {
            cfg.trunk_factor = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--trunk-factor needs a number");
        }
    }

    // The 50-node department cluster of the paper's study.
    let tree = SystemPreset::IitkDepartment.build();
    let sim = FlowSim::new(&tree, cfg);

    // J1: 8 nodes, 4 + 4 across two leaf switches, MPI_Allgather of 1 MB.
    // J2: 12 nodes, 6 + 6 on the same switches.
    let l0 = tree.leaf_nodes(0);
    let l1 = tree.leaf_nodes(1);
    let j1: Vec<NodeId> = l0[..4].iter().chain(&l1[..4]).copied().collect();
    let j2: Vec<NodeId> = l0[4..10].iter().chain(&l1[4..10]).copied().collect();
    // 1 MB per rank: the gathered vectors are 8 MB (J1) and 12 MB (J2).
    let spec = CollectiveSpec::new(Pattern::Rhvd, (j1.len() as u64) << 20);
    let j2_spec = CollectiveSpec::new(Pattern::Rhvd, (j2.len() as u64) << 20);

    let solo = sim.solo_time(&j1, spec);
    println!("J1 alone: one allgather takes {solo:.3} s");

    // J1 iterates for ~10 virtual minutes; J2 bursts in twice.
    let (results, stats) = sim.run_with_stats(vec![
        Workload {
            id: 1,
            nodes: j1,
            spec,
            submit: 0.0,
            iterations: (600.0 / solo) as usize,
        },
        Workload {
            id: 2,
            nodes: j2.clone(),
            spec: j2_spec,
            submit: 150.0,
            iterations: 400,
        },
        Workload {
            id: 3,
            nodes: j2,
            spec: j2_spec,
            submit: 400.0,
            iterations: 400,
        },
    ]);
    println!(
        "link accounting: {:.1} MB on node links, {:.1} MB on leaf uplinks, \
         busiest link at {:.0}% for {:.0} s",
        stats.node_bytes / 1e6,
        stats.trunk_bytes_per_level.first().copied().unwrap_or(0.0) / 1e6,
        stats.busiest_utilization * 100.0,
        stats.span,
    );

    let j2_windows: Vec<(f64, f64)> = results[1..].iter().map(|r| (r.submit, r.end)).collect();
    println!("J2 active: {j2_windows:?}\n");
    println!("t(s)      J1 iter(s)   (binned over 20 iterations)");
    for chunk in results[0].iterations.chunks(20) {
        let t = chunk[0].start;
        let d: f64 = chunk.iter().map(|s| s.duration).sum::<f64>() / chunk.len() as f64;
        let overlapped = j2_windows.iter().any(|&(a, b)| t < b && t + d * 20.0 > a);
        let bar = "#".repeat((d / solo * 20.0) as usize);
        println!(
            "{t:8.1}  {d:9.4}  {bar}{}",
            if overlapped { "  <-- J2 active" } else { "" }
        );
    }
}
