//! Explore collective schedules and how allocation shape changes their
//! cost under the paper's model.
//!
//! ```text
//! cargo run --example pattern_explorer -- [PATTERN] [RANKS]
//! # e.g.
//! cargo run --example pattern_explorer -- rhvd 16
//! ```
//!
//! Prints the step schedule (pairs + payloads), then compares the Eq. 6
//! cost of a balanced power-of-two split against progressively unbalanced
//! splits of the same job over two leaf switches.

use commsched::collectives::CollectiveSpec;
use commsched::core::CostModel;
use commsched::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let pattern: Pattern = args
        .next()
        .map(|s| s.parse().expect("pattern: rd|rhvd|binomial|ring|stencil2d"))
        .unwrap_or(Pattern::Rhvd);
    let ranks: usize = args
        .next()
        .map(|s| s.parse().expect("ranks: a positive integer"))
        .unwrap_or(8);

    let spec = CollectiveSpec::new(pattern, 1 << 20);
    println!(
        "{pattern} over {ranks} ranks ({} steps):\n",
        spec.num_steps(ranks)
    );
    for (k, step) in spec.steps(ranks).iter().enumerate() {
        let pairs: Vec<String> = step.pairs.iter().map(|(a, b)| format!("{a}-{b}")).collect();
        println!(
            "  step {k}: msize {:>8} B  pairs {}",
            step.msize,
            pairs.join(" ")
        );
    }

    // Cost of split shapes over two leaves, as in the paper's §4.2 example
    // (8 nodes as 4+4 beats 3+5 because the inner steps stay intra-switch).
    let leaf = ranks.max(8);
    let tree = Tree::regular_two_level(2, leaf);
    let mut state = ClusterState::new(&tree);
    let model = CostModel::HOP_BYTES;
    println!("\ncost of {ranks}-rank {pattern} split across two leaf switches:");
    for on_first in (0..=ranks / 2).rev() {
        let nodes: Vec<NodeId> = (0..on_first)
            .map(NodeId)
            .chain((0..ranks - on_first).map(|i| NodeId(leaf + i)))
            .collect();
        if nodes.len() != ranks {
            continue;
        }
        let cost = model.hypothetical_cost(&tree, &mut state, &nodes, &spec);
        let tag = if on_first == ranks / 2 {
            "  <- balanced"
        } else {
            ""
        };
        println!(
            "  {on_first:>3} + {:<3}: hop-bytes cost {cost:>14.0}{tag}",
            ranks - on_first
        );
    }
    println!(
        "\nThe balanced split keeps every step after the first intra-switch\n\
         for RHVD — the effect behind the paper's Table 2 strategy."
    );
}
