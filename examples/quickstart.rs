//! Quickstart: place a communication-intensive job with each allocator and
//! compare the communication costs the paper's model assigns them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use commsched::collectives::CollectiveSpec;
use commsched::core::CostModel;
use commsched::prelude::*;

fn main() {
    // A two-level fat-tree like the paper's Figure 2, scaled up a little:
    // 4 leaf switches with 8 nodes each.
    let tree = Tree::regular_two_level(4, 8);
    let mut state = ClusterState::new(&tree);

    // Pre-existing load: one communication-intensive job holding 6 nodes of
    // leaf 0, and a compute job holding half of leaf 1.
    state
        .allocate(
            &tree,
            JobId(1),
            &(0..6).map(NodeId).collect::<Vec<_>>(),
            JobNature::CommIntensive,
        )
        .unwrap();
    state
        .allocate(
            &tree,
            JobId(2),
            &(8..12).map(NodeId).collect::<Vec<_>>(),
            JobNature::ComputeIntensive,
        )
        .unwrap();

    println!(
        "cluster: {} nodes on {} leaf switches",
        tree.num_nodes(),
        tree.num_leaves()
    );
    for k in 0..tree.num_leaves() {
        println!(
            "  leaf {k}: {} free, {} busy ({} comm-intensive), comm ratio {:.3}",
            state.leaf_free(k),
            state.leaf_busy(k),
            state.leaf_comm(k),
            state.communication_ratio(&tree, k),
        );
    }

    // A new allgather-heavy job wants 12 nodes — more than any single
    // leaf has free, so the selectors must pick a split.
    let spec = CollectiveSpec::new(Pattern::Rhvd, 1 << 20);
    let req = AllocRequest::comm(JobId(3), 12).with_pattern(spec);
    let model = CostModel::HOPS;

    println!("\nplacing a 12-node RHVD job:");
    for kind in SelectorKind::ALL {
        let selector = kind.build();
        let nodes = selector.select(&tree, &state, &req).unwrap();
        let cost = model.hypothetical_cost(&tree, &mut state, &nodes, &spec);
        let mut per_leaf = vec![0usize; tree.num_leaves()];
        for n in &nodes {
            per_leaf[tree.leaf_ordinal_of(*n)] += 1;
        }
        println!("  {kind:>8}: split {per_leaf:?}  cost (Eq. 6) {cost:.2}");
    }

    println!(
        "\nLower cost means fewer effective hops for the collective's worst\n\
         pair per step — the quantity the adaptive allocator minimizes."
    );
}
